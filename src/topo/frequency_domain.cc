#include "src/topo/frequency_domain.h"

#include <stdexcept>

namespace eas {

PStateTable::PStateTable(std::vector<PState> states) : states_(std::move(states)) {
  // Throws rather than asserts: a malformed table in a Release build would
  // otherwise index an empty vector every tick, or silently break the
  // ungoverned bit-identity guarantee (which relies on P0 being exactly
  // full speed at nominal voltage).
  if (states_.empty()) {
    throw std::invalid_argument("PStateTable needs at least one P-state");
  }
  if (states_[0].frequency_multiplier != 1.0 || states_[0].voltage != 1.0) {
    throw std::invalid_argument("PStateTable's P0 must be (1.0, 1.0)");
  }
}

PStateTable PStateTable::Default() {
  return PStateTable({
      PState{1.00, 1.00},
      PState{0.87, 0.95},
      PState{0.75, 0.90},
      PState{0.62, 0.85},
      PState{0.50, 0.80},
  });
}

FrequencyDomain::FrequencyDomain(const PStateTable& table)
    : table_(table), residency_(table_.size(), 0) {}

void FrequencyDomain::SetPState(std::size_t index) {
  current_ = index >= table_.size() ? table_.deepest() : index;
}

void FrequencyDomain::StepDown() {
  if (current_ < table_.deepest()) {
    ++current_;
  }
}

void FrequencyDomain::StepUp() {
  if (current_ > 0) {
    --current_;
  }
}

void FrequencyDomain::AccountTick() {
  ++residency_[current_];
  ++total_ticks_;
  multiplier_ticks_ += frequency_multiplier();
}

double FrequencyDomain::ResidencyFraction(std::size_t pstate) const {
  if (total_ticks_ == 0) {
    return 0.0;
  }
  return static_cast<double>(residency_[pstate]) / static_cast<double>(total_ticks_);
}

double FrequencyDomain::AverageFrequency() const {
  if (total_ticks_ == 0) {
    return 1.0;
  }
  return multiplier_ticks_ / static_cast<double>(total_ticks_);
}

void FrequencyDomain::ResetAccounting() {
  for (Tick& r : residency_) {
    r = 0;
  }
  total_ticks_ = 0;
  multiplier_ticks_ = 0.0;
}

}  // namespace eas
