#include "src/topo/cpu_topology.h"

#include <cassert>

namespace eas {
namespace {

// Default level names, innermost first; a topology of depth n takes the
// first n and reverses them, so 3 levels read node:package:smt and 5 read
// rack:board:node:package:smt.
constexpr const char* kDefaultLevelNames[] = {"smt",   "package", "node",  "board",
                                              "rack",  "row",     "hall",  "site"};
constexpr std::size_t kMaxLevels = sizeof(kDefaultLevelNames) / sizeof(kDefaultLevelNames[0]);

// No simulated machine needs more than a million logical CPUs; the cap also
// keeps the width products far from overflow.
constexpr std::size_t kMaxLogicalCpus = std::size_t{1} << 20;

// Strict positive-integer parse: every character a digit, value >= 1. The
// length cap keeps the value far from overflow (no machine has 1e9 nodes).
bool ParsePositiveField(const std::string& text, std::size_t* out) {
  if (text.empty() || text.size() > 9) {
    return false;
  }
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value == 0) {
    return false;
  }
  *out = value;
  return true;
}

std::string DefaultLevelName(std::size_t level, std::size_t num_levels) {
  assert(num_levels <= kMaxLevels && level < num_levels);
  return kDefaultLevelNames[num_levels - 1 - level];
}

}  // namespace

CpuTopology::CpuTopology(std::size_t num_nodes, std::size_t physical_per_node,
                         std::size_t smt_per_physical)
    : CpuTopology(std::vector<TopologyLevel>{{"node", num_nodes},
                                             {"package", physical_per_node},
                                             {"smt", smt_per_physical}}) {}

CpuTopology::CpuTopology(std::vector<TopologyLevel> levels) : levels_(std::move(levels)) {
  assert(levels_.size() >= 2);
  assert(levels_.size() <= kMaxLevels);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    assert(levels_[i].width >= 1);
    if (levels_[i].name.empty()) {
      levels_[i].name = DefaultLevelName(i, levels_.size());
    }
  }
  Finalize();
}

void CpuTopology::Finalize() {
  const std::size_t n = levels_.size();
  smt_per_physical_ = levels_[n - 1].width;
  num_physical_ = 1;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    num_physical_ *= levels_[i].width;
  }
  physical_per_node_ = levels_[n - 2].width;
  num_nodes_ = num_physical_ / physical_per_node_;
  // Suffix products over the package-bearing levels: packages per unit at
  // level i is the product of widths strictly below i (SMT excluded).
  packages_per_unit_.assign(n, 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    packages_per_unit_[i] =
        (i + 1 < n - 1) ? packages_per_unit_[i + 1] * levels_[i + 1].width : 1;
  }
}

CpuTopology CpuTopology::PaperXSeries445(bool smt_enabled) {
  return CpuTopology(2, 4, smt_enabled ? 2 : 1);
}

std::size_t CpuTopology::UnitsAtLevel(std::size_t level) const {
  assert(level < levels_.size());
  if (level == levels_.size() - 1) {
    return num_logical();
  }
  return num_physical_ / packages_per_unit_[level];
}

std::size_t CpuTopology::UnitOf(int logical, std::size_t level) const {
  assert(level + 1 < levels_.size());
  return PhysicalOf(logical) / packages_per_unit_[level];
}

std::size_t CpuTopology::PhysicalOf(int logical) const {
  assert(logical >= 0 && static_cast<std::size_t>(logical) < num_logical());
  return static_cast<std::size_t>(logical) % num_physical();
}

std::size_t CpuTopology::NodeOf(int logical) const {
  return PhysicalOf(logical) / physical_per_node_;
}

std::size_t CpuTopology::ThreadOf(int logical) const {
  return static_cast<std::size_t>(logical) / num_physical();
}

int CpuTopology::LogicalId(std::size_t physical, std::size_t thread) const {
  assert(physical < num_physical());
  assert(thread < smt_per_physical_);
  return static_cast<int>(thread * num_physical() + physical);
}

std::vector<int> CpuTopology::SiblingsOf(int logical) const {
  const std::size_t physical = PhysicalOf(logical);
  std::vector<int> siblings;
  siblings.reserve(smt_per_physical_);
  for (std::size_t t = 0; t < smt_per_physical_; ++t) {
    siblings.push_back(LogicalId(physical, t));
  }
  return siblings;
}

bool CpuTopology::AreSiblings(int a, int b) const { return PhysicalOf(a) == PhysicalOf(b); }

bool CpuTopology::SameNode(int a, int b) const { return NodeOf(a) == NodeOf(b); }

std::optional<CpuTopology> ParseTopologySpec(const std::string& spec, std::string* error) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : spec) {
    if (c == ':') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  if (fields.size() < 2) {
    if (error != nullptr) {
      *error = "want at least two colon-separated level widths "
               "(nodes:physical-per-node:smt, or deeper lists like 4:8:2:4:2), got \"" +
               spec + "\"";
    }
    return std::nullopt;
  }
  if (fields.size() > kMaxLevels) {
    if (error != nullptr) {
      *error = "topology \"" + spec + "\" has " + std::to_string(fields.size()) +
               " levels; at most " + std::to_string(kMaxLevels) + " are supported";
    }
    return std::nullopt;
  }
  // The classic 3-level grid keeps its historical field names in errors;
  // everything else reports by level name, token, and 1-based position.
  static constexpr const char* kGridFieldNames[3] = {"nodes", "physical-per-node", "smt"};
  std::vector<TopologyLevel> levels(fields.size());
  std::size_t total_logical = 1;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::string token = fields[i];
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      levels[i].name = token.substr(0, eq);
      token = token.substr(eq + 1);
      if (levels[i].name.empty()) {
        if (error != nullptr) {
          *error = "level " + std::to_string(i + 1) + " token \"" + fields[i] +
                   "\" has an empty level name";
        }
        return std::nullopt;
      }
    } else if (fields.size() == 3) {
      levels[i].name = (i == 0) ? "node" : (i == 1) ? "package" : "smt";
    }
    if (!ParsePositiveField(token, &levels[i].width)) {
      if (error != nullptr) {
        const std::string display =
            fields.size() == 3 && eq == std::string::npos
                ? std::string(kGridFieldNames[i])
                : (levels[i].name.empty() ? DefaultLevelName(i, fields.size()) : levels[i].name);
        *error = display + " field \"" + token + "\" (level " + std::to_string(i + 1) + " of \"" +
                 spec + "\") is not a positive integer";
      }
      return std::nullopt;
    }
    total_logical *= levels[i].width;
    if (total_logical > kMaxLogicalCpus) {
      if (error != nullptr) {
        *error = "topology \"" + spec + "\" describes more than " +
                 std::to_string(kMaxLogicalCpus) + " logical CPUs";
      }
      return std::nullopt;
    }
  }
  return CpuTopology(std::move(levels));
}

}  // namespace eas
