#include "src/topo/cpu_topology.h"

#include <cassert>

namespace eas {
namespace {

// Strict positive-integer parse: every character a digit, value >= 1. The
// length cap keeps the value far from overflow (no machine has 1e9 nodes).
bool ParsePositiveField(const std::string& text, std::size_t* out) {
  if (text.empty() || text.size() > 9) {
    return false;
  }
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value == 0) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

CpuTopology::CpuTopology(std::size_t num_nodes, std::size_t physical_per_node,
                         std::size_t smt_per_physical)
    : num_nodes_(num_nodes),
      physical_per_node_(physical_per_node),
      smt_per_physical_(smt_per_physical) {
  assert(num_nodes >= 1);
  assert(physical_per_node >= 1);
  assert(smt_per_physical >= 1);
}

CpuTopology CpuTopology::PaperXSeries445(bool smt_enabled) {
  return CpuTopology(2, 4, smt_enabled ? 2 : 1);
}

std::size_t CpuTopology::PhysicalOf(int logical) const {
  assert(logical >= 0 && static_cast<std::size_t>(logical) < num_logical());
  return static_cast<std::size_t>(logical) % num_physical();
}

std::size_t CpuTopology::NodeOf(int logical) const {
  return PhysicalOf(logical) / physical_per_node_;
}

std::size_t CpuTopology::ThreadOf(int logical) const {
  return static_cast<std::size_t>(logical) / num_physical();
}

int CpuTopology::LogicalId(std::size_t physical, std::size_t thread) const {
  assert(physical < num_physical());
  assert(thread < smt_per_physical_);
  return static_cast<int>(thread * num_physical() + physical);
}

std::vector<int> CpuTopology::SiblingsOf(int logical) const {
  const std::size_t physical = PhysicalOf(logical);
  std::vector<int> siblings;
  siblings.reserve(smt_per_physical_);
  for (std::size_t t = 0; t < smt_per_physical_; ++t) {
    siblings.push_back(LogicalId(physical, t));
  }
  return siblings;
}

bool CpuTopology::AreSiblings(int a, int b) const { return PhysicalOf(a) == PhysicalOf(b); }

bool CpuTopology::SameNode(int a, int b) const { return NodeOf(a) == NodeOf(b); }

std::optional<CpuTopology> ParseTopologySpec(const std::string& spec, std::string* error) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : spec) {
    if (c == ':') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  if (fields.size() != 3) {
    if (error != nullptr) {
      *error = "want nodes:physical-per-node:smt, got \"" + spec + "\"";
    }
    return std::nullopt;
  }
  static constexpr const char* kFieldNames[3] = {"nodes", "physical-per-node", "smt"};
  std::size_t values[3];
  for (std::size_t i = 0; i < 3; ++i) {
    if (!ParsePositiveField(fields[i], &values[i])) {
      if (error != nullptr) {
        *error = std::string(kFieldNames[i]) + " field \"" + fields[i] +
                 "\" is not a positive integer";
      }
      return std::nullopt;
    }
  }
  return CpuTopology(values[0], values[1], values[2]);
}

}  // namespace eas
