#include "src/topo/cpu_topology.h"

#include <cassert>

namespace eas {

CpuTopology::CpuTopology(std::size_t num_nodes, std::size_t physical_per_node,
                         std::size_t smt_per_physical)
    : num_nodes_(num_nodes),
      physical_per_node_(physical_per_node),
      smt_per_physical_(smt_per_physical) {
  assert(num_nodes >= 1);
  assert(physical_per_node >= 1);
  assert(smt_per_physical >= 1);
}

CpuTopology CpuTopology::PaperXSeries445(bool smt_enabled) {
  return CpuTopology(2, 4, smt_enabled ? 2 : 1);
}

std::size_t CpuTopology::PhysicalOf(int logical) const {
  assert(logical >= 0 && static_cast<std::size_t>(logical) < num_logical());
  return static_cast<std::size_t>(logical) % num_physical();
}

std::size_t CpuTopology::NodeOf(int logical) const {
  return PhysicalOf(logical) / physical_per_node_;
}

std::size_t CpuTopology::ThreadOf(int logical) const {
  return static_cast<std::size_t>(logical) / num_physical();
}

int CpuTopology::LogicalId(std::size_t physical, std::size_t thread) const {
  assert(physical < num_physical());
  assert(thread < smt_per_physical_);
  return static_cast<int>(thread * num_physical() + physical);
}

std::vector<int> CpuTopology::SiblingsOf(int logical) const {
  const std::size_t physical = PhysicalOf(logical);
  std::vector<int> siblings;
  siblings.reserve(smt_per_physical_);
  for (std::size_t t = 0; t < smt_per_physical_; ++t) {
    siblings.push_back(LogicalId(physical, t));
  }
  return siblings;
}

bool CpuTopology::AreSiblings(int a, int b) const { return PhysicalOf(a) == PhysicalOf(b); }

bool CpuTopology::SameNode(int a, int b) const { return NodeOf(a) == NodeOf(b); }

}  // namespace eas
