// Scheduler domains (paper Section 4.1, Figure 1; Linux sched-domains.txt).
//
// A scheduler domain spans a set of CPUs partitioned into CPU groups.
// Domains stack hierarchically, one domain level per topology level: the SMT
// level groups the logical CPUs of one physical package, the package level
// groups the packages of one node, and every level above groups the units of
// the next topology level down (board, rack, ...). Balancing resolves
// imbalances in the lowest (cheapest) domain possible; the SMT level carries
// a flag telling the energy balancer to skip it (Section 4.7: siblings share
// the die, so balancing energy between them is pointless), and every level
// grouping node-or-coarser units carries the node-crossing cost flag.

#ifndef SRC_TOPO_SCHED_DOMAIN_H_
#define SRC_TOPO_SCHED_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/cpu_topology.h"

namespace eas {

struct CpuGroup {
  std::vector<int> cpus;
  // Index (into DomainHierarchy::domains()) of the domain that subdivides
  // exactly this group's CPUs one level down, or -1 for a leaf group. The
  // balance-aggregate cache rolls group metrics up these links instead of
  // rescanning every runqueue.
  int child_domain = -1;
  // Dense hierarchy-wide group index, assigned by DomainHierarchy::Build in
  // domain order ([0, num_groups())). The stable identity for keying
  // per-group side tables (the balance-aggregate cache): unlike the group's
  // address it is identical across runs and hierarchy copies. -1 on groups
  // built by hand outside a hierarchy.
  int index = -1;

  bool Contains(int cpu) const;
};

enum DomainFlags : std::uint32_t {
  kDomainNone = 0,
  // Energy balancing is skipped within this domain (SMT sibling level).
  kDomainNoEnergyBalance = 1u << 0,
  // Migrations within this domain cross a NUMA node boundary.
  kDomainCrossesNode = 1u << 1,
};

struct SchedDomain {
  int level = 0;                 // 0 = lowest (cheapest balancing)
  std::uint32_t flags = kDomainNone;
  std::string name;
  std::vector<int> cpus;         // union of all groups
  std::vector<CpuGroup> groups;

  bool Contains(int cpu) const;
  // Group containing `cpu`, or nullptr.
  const CpuGroup* GroupOf(int cpu) const;
};

// One step of a CPU's domain stack: the domain plus the group within it that
// contains the CPU, precomputed so a balance pass never linear-scans groups.
struct DomainCursor {
  const SchedDomain* domain = nullptr;
  const CpuGroup* group = nullptr;
};

// The per-system domain hierarchy. StackFor(cpu) yields the stack of
// (domain, own group) cursors containing a CPU, bottom-up, which is the
// traversal order of both balancing algorithms (Figures 4 and 5).
class DomainHierarchy {
 public:
  static DomainHierarchy Build(const CpuTopology& topology);

  DomainHierarchy() = default;
  // Copies rebuild the cursor stacks so they point into the new copy's
  // domains; moves keep the heap buffers (and thus the pointers) alive.
  DomainHierarchy(const DomainHierarchy& other);
  DomainHierarchy& operator=(const DomainHierarchy& other);
  DomainHierarchy(DomainHierarchy&&) = default;
  DomainHierarchy& operator=(DomainHierarchy&&) = default;

  const std::vector<SchedDomain>& domains() const { return domains_; }
  std::size_t num_levels() const { return num_levels_; }
  // Total CPU groups across all domains; every group's `index` is below this.
  std::size_t num_groups() const { return num_groups_; }

  // Precomputed (domain, group) stack for `cpu`, ordered lowest level first.
  const std::vector<DomainCursor>& StackFor(int cpu) const {
    return stacks_[static_cast<std::size_t>(cpu)];
  }

  // Domains containing `cpu`, ordered lowest level first.
  std::vector<const SchedDomain*> DomainsFor(int cpu) const;

 private:
  void BuildStacks(std::size_t num_cpus);

  std::vector<SchedDomain> domains_;
  std::vector<std::vector<DomainCursor>> stacks_;
  std::size_t num_levels_ = 0;
  std::size_t num_groups_ = 0;
};

}  // namespace eas

#endif  // SRC_TOPO_SCHED_DOMAIN_H_
