// Scheduler domains (paper Section 4.1, Figure 1; Linux sched-domains.txt).
//
// A scheduler domain spans a set of CPUs partitioned into CPU groups.
// Domains stack hierarchically: the SMT level groups the logical CPUs of one
// physical package, the node level groups the physical packages of one NUMA
// node, the top level groups the nodes. Balancing resolves imbalances in the
// lowest (cheapest) domain possible, and the SMT level carries a flag telling
// the energy balancer to skip it (Section 4.7: siblings share the die, so
// balancing energy between them is pointless).

#ifndef SRC_TOPO_SCHED_DOMAIN_H_
#define SRC_TOPO_SCHED_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/cpu_topology.h"

namespace eas {

struct CpuGroup {
  std::vector<int> cpus;

  bool Contains(int cpu) const;
};

enum DomainFlags : std::uint32_t {
  kDomainNone = 0,
  // Energy balancing is skipped within this domain (SMT sibling level).
  kDomainNoEnergyBalance = 1u << 0,
  // Migrations within this domain cross a NUMA node boundary.
  kDomainCrossesNode = 1u << 1,
};

struct SchedDomain {
  int level = 0;                 // 0 = lowest (cheapest balancing)
  std::uint32_t flags = kDomainNone;
  std::string name;
  std::vector<int> cpus;         // union of all groups
  std::vector<CpuGroup> groups;

  bool Contains(int cpu) const;
  // Group containing `cpu`, or nullptr.
  const CpuGroup* GroupOf(int cpu) const;
};

// The per-system domain hierarchy. DomainsFor(cpu) yields the stack of
// domains containing a CPU, bottom-up, which is the traversal order of both
// balancing algorithms (Figures 4 and 5).
class DomainHierarchy {
 public:
  static DomainHierarchy Build(const CpuTopology& topology);

  const std::vector<SchedDomain>& domains() const { return domains_; }
  std::size_t num_levels() const { return num_levels_; }

  // Domains containing `cpu`, ordered lowest level first.
  std::vector<const SchedDomain*> DomainsFor(int cpu) const;

 private:
  std::vector<SchedDomain> domains_;
  std::size_t num_levels_ = 0;
};

}  // namespace eas

#endif  // SRC_TOPO_SCHED_DOMAIN_H_
