#include "src/freq/governor_registry.h"

#include <stdexcept>
#include <utility>

#include "src/freq/governors.h"

namespace eas {

void RegisterBuiltinGovernors(FrequencyGovernorRegistry& registry) {
  registry.Register("none", [] { return std::make_unique<NoneGovernor>(); });
  registry.Register("thermal-stepdown",
                    [] { return std::make_unique<ThermalStepdownGovernor>(); });
  registry.Register("ondemand", [] { return std::make_unique<OndemandGovernor>(); });
}

FrequencyGovernorRegistry& FrequencyGovernorRegistry::Global() {
  static FrequencyGovernorRegistry* registry = [] {
    auto* r = new FrequencyGovernorRegistry();
    RegisterBuiltinGovernors(*r);
    return r;
  }();
  return *registry;
}

bool FrequencyGovernorRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<FrequencyGovernor> FrequencyGovernorRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return nullptr;
    }
    factory = it->second;
  }
  return factory();
}

std::unique_ptr<FrequencyGovernor> FrequencyGovernorRegistry::CreateOrThrow(
    const std::string& name) const {
  std::unique_ptr<FrequencyGovernor> governor = Create(name);
  if (governor == nullptr) {
    std::string known;
    for (const std::string& candidate : Names()) {
      known += known.empty() ? candidate : ", " + candidate;
    }
    throw std::invalid_argument("unknown frequency governor \"" + name + "\" (known: " + known +
                                ")");
  }
  return governor;
}

bool FrequencyGovernorRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> FrequencyGovernorRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace eas
