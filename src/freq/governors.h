// The built-in frequency governors.
//
//  - "none":             pins P0 forever. The FrequencyPhase special-cases it
//                        to skip all per-tick work, so a machine with the
//                        none governor is bit-identical to one predating the
//                        frequency layer (pinned by the golden tests).
//  - "thermal-stepdown": caps package power the DVFS way: one P-state deeper
//                        whenever the package's thermal power exceeds its
//                        budget, one shallower once it has fallen below the
//                        budget by the hysteresis margin (the same margin
//                        hlt throttling uses) - the direct competitor to the
//                        paper's hlt gate.
//  - "ondemand":         utilization-driven (the Linux cpufreq idiom): jumps
//                        to P0 when the package's runnable share is high,
//                        creeps one state deeper after sustained low
//                        utilization.
//
// All governors are deterministic and self-pace via an update interval: a
// decision may change the P-state at most once per interval, which both
// models PLL/VRM relock latency and keeps the thermal feedback loop from
// flapping through the whole ladder in a handful of ticks.

#ifndef SRC_FREQ_GOVERNORS_H_
#define SRC_FREQ_GOVERNORS_H_

#include "src/freq/frequency_governor.h"

namespace eas {

class NoneGovernor : public FrequencyGovernor {
 public:
  std::size_t DecidePState(const GovernorInputs& inputs) override;
};

class ThermalStepdownGovernor : public FrequencyGovernor {
 public:
  explicit ThermalStepdownGovernor(Tick update_interval_ticks = kDefaultUpdateIntervalTicks);

  std::size_t DecidePState(const GovernorInputs& inputs) override;

  static constexpr Tick kDefaultUpdateIntervalTicks = 50;

 private:
  Tick update_interval_ticks_;
  Tick last_change_tick_ = -1;
};

class OndemandGovernor : public FrequencyGovernor {
 public:
  explicit OndemandGovernor(Tick update_interval_ticks = kDefaultUpdateIntervalTicks);

  std::size_t DecidePState(const GovernorInputs& inputs) override;

  static constexpr Tick kDefaultUpdateIntervalTicks = 50;
  static constexpr double kUpThreshold = 0.75;
  static constexpr double kDownThreshold = 0.25;
  // Consecutive low-utilization decisions before a step down: going slower
  // is cheap to defer, going faster is not (Linux ondemand's asymmetry).
  static constexpr int kDownHold = 2;

 private:
  Tick update_interval_ticks_;
  Tick last_decision_tick_ = -1;
  int low_util_decisions_ = 0;
};

}  // namespace eas

#endif  // SRC_FREQ_GOVERNORS_H_
