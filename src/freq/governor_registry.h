// Name -> factory registry for frequency governors.
//
// The FrequencyPhase selects its governor by string
// (MachineConfig::frequency_governor), so experiments switch DVFS policies
// from configuration or `eastool --governor` without touching engine code -
// the exact pattern BalancePolicyRegistry established for balancing
// policies. Built-in governors ("none", "thermal-stepdown", "ondemand") are
// registered on first access; additional governors can be registered at
// runtime. Factories build one instance per physical package, so governors
// may keep per-package state as plain members.

#ifndef SRC_FREQ_GOVERNOR_REGISTRY_H_
#define SRC_FREQ_GOVERNOR_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/freq/frequency_governor.h"

namespace eas {

class FrequencyGovernorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<FrequencyGovernor>()>;

  // The process-wide registry, with the built-in governors pre-registered.
  static FrequencyGovernorRegistry& Global();

  // Registers `factory` under `name`. Returns false (and leaves the existing
  // entry) if the name is already taken.
  bool Register(const std::string& name, Factory factory);

  // Builds the governor registered under `name`; nullptr if unknown.
  std::unique_ptr<FrequencyGovernor> Create(const std::string& name) const;

  // Like Create, but throws std::invalid_argument naming the known governors
  // when `name` is unknown - the Machine's fail-fast construction path.
  std::unique_ptr<FrequencyGovernor> CreateOrThrow(const std::string& name) const;

  bool Contains(const std::string& name) const;

  // Registered names, sorted.
  std::vector<std::string> Names() const;

  // An empty registry (tests build private ones; Global() is the shared,
  // builtin-populated instance).
  FrequencyGovernorRegistry() = default;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

// Registers the built-in governors into `registry` (exposed for tests that
// build private registries; Global() already includes them).
void RegisterBuiltinGovernors(FrequencyGovernorRegistry& registry);

}  // namespace eas

#endif  // SRC_FREQ_GOVERNOR_REGISTRY_H_
