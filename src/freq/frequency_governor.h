// Frequency governors: the policy side of the DVFS layer.
//
// A governor decides, per physical package per tick, which P-state the
// package's FrequencyDomain should run at. It sees only aggregate inputs
// (thermal power vs budget, utilization, the hlt gate's decision), mirroring
// how balancing policies see the machine only through BalanceEnv - governors
// know nothing about the simulator. Concrete governors live in
// src/freq/governors.{h,cc} and are selected by name through the
// FrequencyGovernorRegistry (src/freq/governor_registry.h), exactly like
// balancing policies through the BalancePolicyRegistry.

#ifndef SRC_FREQ_FREQUENCY_GOVERNOR_H_
#define SRC_FREQ_FREQUENCY_GOVERNOR_H_

#include <cstddef>

#include "src/base/time.h"

namespace eas {

// Everything a governor may base one package's decision on. One governor
// instance serves one package (the FrequencyPhase creates one per domain),
// so governors may keep per-package state (hold counters, last change tick)
// as plain members.
struct GovernorInputs {
  Tick now = 0;
  std::size_t current_pstate = 0;
  std::size_t num_pstates = 1;

  // The package's thermal-power metric (sum over siblings, W) and its power
  // budget - the same quantities the hlt ThrottleGate compares.
  double thermal_power_watts = 0.0;
  double budget_watts = 0.0;
  // Step-up headroom margin, mirroring throttle_hysteresis_watts.
  double hysteresis_watts = 0.5;

  // Runnable share of the package's sibling capacity, in [0, 1]: how many
  // logical CPUs have work queued or running.
  double utilization = 0.0;

  // Whether the hlt gate halted the package this tick (a governor may defer
  // to throttling or react to it).
  bool package_throttled = false;
};

class FrequencyGovernor {
 public:
  virtual ~FrequencyGovernor() = default;

  // Returns the P-state the package should run at for this tick. Values past
  // the deepest state are clamped by the domain.
  virtual std::size_t DecidePState(const GovernorInputs& inputs) = 0;
};

}  // namespace eas

#endif  // SRC_FREQ_FREQUENCY_GOVERNOR_H_
