#include "src/freq/governors.h"

namespace eas {

std::size_t NoneGovernor::DecidePState(const GovernorInputs&) { return 0; }

ThermalStepdownGovernor::ThermalStepdownGovernor(Tick update_interval_ticks)
    : update_interval_ticks_(update_interval_ticks) {}

std::size_t ThermalStepdownGovernor::DecidePState(const GovernorInputs& inputs) {
  // At most one transition per interval: the thermal-power metric trails the
  // RC time constant, so reacting every tick would run the whole ladder down
  // before the metric could respond.
  if (last_change_tick_ >= 0 && inputs.now - last_change_tick_ < update_interval_ticks_) {
    return inputs.current_pstate;
  }
  if (inputs.thermal_power_watts > inputs.budget_watts &&
      inputs.current_pstate + 1 < inputs.num_pstates) {
    last_change_tick_ = inputs.now;
    return inputs.current_pstate + 1;
  }
  // Step up only with hysteresis headroom below the budget - the band
  // [budget - hysteresis, budget] holds the current state (no flapping),
  // mirroring the hlt ThrottleController's release margin.
  if (inputs.thermal_power_watts < inputs.budget_watts - inputs.hysteresis_watts &&
      inputs.current_pstate > 0) {
    last_change_tick_ = inputs.now;
    return inputs.current_pstate - 1;
  }
  return inputs.current_pstate;
}

OndemandGovernor::OndemandGovernor(Tick update_interval_ticks)
    : update_interval_ticks_(update_interval_ticks) {}

std::size_t OndemandGovernor::DecidePState(const GovernorInputs& inputs) {
  if (last_decision_tick_ >= 0 && inputs.now - last_decision_tick_ < update_interval_ticks_) {
    return inputs.current_pstate;
  }
  last_decision_tick_ = inputs.now;
  if (inputs.utilization >= kUpThreshold) {
    // Load showed up: go straight to full speed (latency matters more than
    // the power saved by ramping gradually).
    low_util_decisions_ = 0;
    return 0;
  }
  if (inputs.utilization <= kDownThreshold) {
    if (++low_util_decisions_ >= kDownHold && inputs.current_pstate + 1 < inputs.num_pstates) {
      low_util_decisions_ = 0;
      return inputs.current_pstate + 1;
    }
    return inputs.current_pstate;
  }
  low_util_decisions_ = 0;
  return inputs.current_pstate;
}

}  // namespace eas
