// Declarative, seeded fault plans: the data model of the chaos layer.
//
// A FaultPlan is a tick-ordered list of injection events - core offline /
// online, package thermal spike, P-state table clamp - parsed from the
// `faults = <spec>` RunRequest key. The plan is pure data: parsing never
// touches simulation state, so a plan validates against a topology at
// request-resolve time and replays byte-identically from the request file
// (the PR 5 contract). The engine-facing reaction logic (drain, re-place,
// emergency stepdown) lives in src/sim/fault_phase.h, mirroring how
// src/freq holds governors while src/sim holds the FrequencyPhase.
//
// Spec grammar (comma-separated clauses; no spaces required, none emitted):
//
//   off:<cpu>@<tick>                   take logical CPU offline
//   on:<cpu>@<tick>                    bring logical CPU back online
//   spike:<pkg>@<tick>:<degC>:<dur>    add degC to the package die
//                                      temperature and hold a thermal
//                                      emergency for <dur> ticks
//   clamp:<pkg>@<tick>:<floor>:<dur>   clamp the package P-state to at
//                                      least index <floor> for <dur> ticks
//   churn:<n>@<horizon>:<seed>         expand into n seeded offline/online
//                                      pairs over ticks [1, horizon]
//
// `churn` draws every choice from its own eas::Rng(seed) - never from the
// experiment's shared stream - so a chaos schedule is a function of the
// spec text alone and two runs differing only in workload see identical
// fault timings. The literal spec "none" parses to an empty plan; requests
// use it to cancel a scenario's baked-in plan.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/topo/cpu_topology.h"

namespace eas {

enum class FaultKind {
  kCpuOffline,   // drain the runqueue, stop selecting/accounting the CPU
  kCpuOnline,    // restore capacity; balancing repopulates the queue
  kThermalSpike, // die temperature jump + timed thermal emergency
  kPStateClamp,  // timed floor on the package frequency domain's P-state
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCpuOffline;
  Tick tick = 0;             // when the event fires
  int cpu = -1;              // kCpuOffline/kCpuOnline: logical CPU
  std::size_t package = 0;   // kThermalSpike/kPStateClamp: physical package
  double delta_c = 0.0;      // kThermalSpike: degrees C added to the die
  std::size_t floor = 0;     // kPStateClamp: minimum P-state index
  Tick duration = 0;         // kThermalSpike/kPStateClamp: ticks held
};

struct FaultPlan {
  // Events in clause/generation order; the engine queues them keyed
  // (tick, position), so same-tick events fire in spec order.
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

// Parses `spec` against `topology` (CPU and package indices must be in
// range, durations >= 1, spike deltas finite). Returns nullopt and fills
// *error with a diagnostic on a malformed spec - the ParseTopologySpec
// idiom. "none" and the empty string parse to an empty plan.
std::optional<FaultPlan> ParseFaultPlan(const std::string& spec, const CpuTopology& topology,
                                        std::string* error);

// The grammar reference printed by `eastool --list-faults`.
std::string FaultPlanGrammar();

}  // namespace eas

#endif  // SRC_FAULT_FAULT_PLAN_H_
