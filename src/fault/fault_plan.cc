#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "src/base/rng.h"

namespace eas {
namespace {

// Splits `text` on `sep`, keeping empty fields (so "off:@5" reports the
// missing cpu instead of silently shifting the tick into its place).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseInt64(const std::string& text, std::int64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::istringstream stream(text);
  std::int64_t value = 0;
  stream >> value;
  if (stream.fail() || !stream.eof()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  std::istringstream stream(text);
  double value = 0.0;
  stream >> value;
  if (stream.fail() || !stream.eof() || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& clause, const std::string& why) {
  if (error != nullptr) {
    *error = "clause '" + clause + "': " + why;
  }
  return false;
}

// Parses one `off:`/`on:` clause body (`<cpu>@<tick>`) into `plan`.
bool ParseHotplug(const std::string& clause, const std::string& body, FaultKind kind,
                  const CpuTopology& topology, FaultPlan* plan, std::string* error) {
  const std::vector<std::string> at = Split(body, '@');
  std::int64_t cpu = 0;
  std::int64_t tick = 0;
  if (at.size() != 2 || !ParseInt64(at[0], &cpu) || !ParseInt64(at[1], &tick)) {
    return Fail(error, clause, "expected <cpu>@<tick>");
  }
  if (cpu < 0 || cpu >= static_cast<std::int64_t>(topology.num_logical())) {
    return Fail(error, clause,
                "cpu out of range (topology has " + std::to_string(topology.num_logical()) +
                    " logical CPUs)");
  }
  if (tick < 0) {
    return Fail(error, clause, "tick must be >= 0");
  }
  FaultEvent event;
  event.kind = kind;
  event.tick = tick;
  event.cpu = static_cast<int>(cpu);
  plan->events.push_back(event);
  return true;
}

// Parses one `spike:`/`clamp:` clause body (`<pkg>@<tick>:<arg>:<dur>`).
bool ParsePackageFault(const std::string& clause, const std::string& body, FaultKind kind,
                       const CpuTopology& topology, FaultPlan* plan, std::string* error) {
  const std::vector<std::string> at = Split(body, '@');
  std::int64_t package = 0;
  if (at.size() != 2 || !ParseInt64(at[0], &package)) {
    return Fail(error, clause, "expected <pkg>@<tick>:<arg>:<dur>");
  }
  if (package < 0 || package >= static_cast<std::int64_t>(topology.num_physical())) {
    return Fail(error, clause,
                "package out of range (topology has " + std::to_string(topology.num_physical()) +
                    " packages)");
  }
  const std::vector<std::string> rest = Split(at[1], ':');
  std::int64_t tick = 0;
  std::int64_t duration = 0;
  if (rest.size() != 3 || !ParseInt64(rest[0], &tick) || !ParseInt64(rest[2], &duration)) {
    return Fail(error, clause, "expected <pkg>@<tick>:<arg>:<dur>");
  }
  if (tick < 0) {
    return Fail(error, clause, "tick must be >= 0");
  }
  if (duration < 1) {
    return Fail(error, clause, "duration must be >= 1 tick");
  }
  FaultEvent event;
  event.kind = kind;
  event.tick = tick;
  event.package = static_cast<std::size_t>(package);
  event.duration = duration;
  if (kind == FaultKind::kThermalSpike) {
    if (!ParseDouble(rest[1], &event.delta_c)) {
      return Fail(error, clause, "spike delta must be a finite number of degrees C");
    }
  } else {
    std::int64_t floor = 0;
    if (!ParseInt64(rest[1], &floor) || floor < 0) {
      return Fail(error, clause, "clamp floor must be a P-state index >= 0");
    }
    // The floor is re-clamped to the table's deepest state at apply time;
    // the table is not known here (it is a MachineConfig property).
    event.floor = static_cast<std::size_t>(floor);
  }
  plan->events.push_back(event);
  return true;
}

// Expands one `churn:<n>@<horizon>:<seed>` clause into n offline/online
// pairs drawn from a dedicated Rng(seed) - the spec text alone determines
// every cpu and tick, independent of the experiment's shared stream.
bool ParseChurn(const std::string& clause, const std::string& body,
                const CpuTopology& topology, FaultPlan* plan, std::string* error) {
  const std::vector<std::string> at = Split(body, '@');
  std::int64_t count = 0;
  if (at.size() != 2 || !ParseInt64(at[0], &count)) {
    return Fail(error, clause, "expected <n>@<horizon>:<seed>");
  }
  const std::vector<std::string> rest = Split(at[1], ':');
  std::int64_t horizon = 0;
  std::int64_t seed = 0;
  if (rest.size() != 2 || !ParseInt64(rest[0], &horizon) || !ParseInt64(rest[1], &seed)) {
    return Fail(error, clause, "expected <n>@<horizon>:<seed>");
  }
  if (count < 1) {
    return Fail(error, clause, "pair count must be >= 1");
  }
  if (horizon < 2) {
    return Fail(error, clause, "horizon must be >= 2 ticks");
  }
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::uint64_t logical = topology.num_logical();
  const std::uint64_t max_duration =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(horizon) / 4, 1);
  for (std::int64_t i = 0; i < count; ++i) {
    const int cpu = static_cast<int>(rng.NextBelow(logical));
    const Tick off_tick = 1 + static_cast<Tick>(rng.NextBelow(static_cast<std::uint64_t>(horizon)));
    const Tick duration = 1 + static_cast<Tick>(rng.NextBelow(max_duration));
    FaultEvent off;
    off.kind = FaultKind::kCpuOffline;
    off.tick = off_tick;
    off.cpu = cpu;
    plan->events.push_back(off);
    FaultEvent on;
    on.kind = FaultKind::kCpuOnline;
    on.tick = off_tick + duration;
    on.cpu = cpu;
    plan->events.push_back(on);
  }
  return true;
}

}  // namespace

std::optional<FaultPlan> ParseFaultPlan(const std::string& spec, const CpuTopology& topology,
                                        std::string* error) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") {
    return plan;
  }
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) {
      if (error != nullptr) {
        *error = "empty clause (stray comma?)";
      }
      return std::nullopt;
    }
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      Fail(error, clause, "expected <kind>:<args> (kinds: off, on, spike, clamp, churn)");
      return std::nullopt;
    }
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);
    bool ok = false;
    if (kind == "off") {
      ok = ParseHotplug(clause, body, FaultKind::kCpuOffline, topology, &plan, error);
    } else if (kind == "on") {
      ok = ParseHotplug(clause, body, FaultKind::kCpuOnline, topology, &plan, error);
    } else if (kind == "spike") {
      ok = ParsePackageFault(clause, body, FaultKind::kThermalSpike, topology, &plan, error);
    } else if (kind == "clamp") {
      ok = ParsePackageFault(clause, body, FaultKind::kPStateClamp, topology, &plan, error);
    } else if (kind == "churn") {
      ok = ParseChurn(clause, body, topology, &plan, error);
    } else {
      Fail(error, clause, "unknown kind '" + kind + "' (kinds: off, on, spike, clamp, churn)");
    }
    if (!ok) {
      return std::nullopt;
    }
  }
  return plan;
}

std::string FaultPlanGrammar() {
  return
      "fault spec: comma-separated clauses, validated against the run's topology\n"
      "  off:<cpu>@<tick>                 take logical CPU offline; its runqueue is\n"
      "                                   drained and tasks re-place through the\n"
      "                                   balance machinery (the last online CPU\n"
      "                                   refuses to go offline)\n"
      "  on:<cpu>@<tick>                  bring the CPU back online; balancing\n"
      "                                   repopulates it on its next pass\n"
      "  spike:<pkg>@<tick>:<degC>:<dur>  add degC to the package die temperature\n"
      "                                   and hold a thermal emergency for dur\n"
      "                                   ticks (governed: forced deepest P-state;\n"
      "                                   ungoverned: hlt backstop)\n"
      "  clamp:<pkg>@<tick>:<floor>:<dur> clamp the package P-state to at least\n"
      "                                   index floor for dur ticks\n"
      "  churn:<n>@<horizon>:<seed>       expand into n seeded offline/online pairs\n"
      "                                   over ticks [1, horizon]; the schedule is a\n"
      "                                   function of the spec text alone\n"
      "  none                             the empty plan (cancels a scenario's)\n"
      "example:\n"
      "  --faults churn:10@50000:1337,spike:0@6000:12:2500,clamp:2@10000:3:6000\n";
}

}  // namespace eas
