#include "src/sim/csv_export.h"

#include <cstdio>
#include <fstream>

namespace eas {

std::string SeriesSetToCsv(const SeriesSet& set) {
  std::string out = "tick";
  for (const auto& series : set.all()) {
    out += ",";
    out += series.name();
  }
  out += "\n";
  if (set.size() == 0) {
    return out;
  }
  const Series& first = set.at(0);
  char buffer[64];
  for (std::size_t i = 0; i < first.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(first.tick_at(i)));
    out += buffer;
    for (const auto& series : set.all()) {
      if (i < series.size()) {
        std::snprintf(buffer, sizeof(buffer), ",%.4f", series.value_at(i));
      } else {
        std::snprintf(buffer, sizeof(buffer), ",");
      }
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

std::string RunSummaryToCsv(const RunResult& result) {
  std::string out;
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "migrations,%lld\n",
                static_cast<long long>(result.migrations));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "completions,%lld\n",
                static_cast<long long>(result.completions));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "work_done_ticks,%.1f\n", result.work_done_ticks);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "duration_seconds,%.3f\n", result.duration_seconds);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "throughput,%.2f\n", result.Throughput());
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "avg_throttled_fraction,%.4f\n",
                result.AverageThrottledFraction());
  out += buffer;
  for (std::size_t cpu = 0; cpu < result.throttled_fraction.size(); ++cpu) {
    std::snprintf(buffer, sizeof(buffer), "throttled_fraction_cpu%zu,%.4f\n", cpu,
                  result.throttled_fraction[cpu]);
    out += buffer;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  stream << contents;
  return static_cast<bool>(stream);
}

}  // namespace eas
