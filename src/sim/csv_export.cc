#include "src/sim/csv_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/sim/metrics.h"

namespace eas {

std::string SeriesSetToCsv(const SeriesSet& set) {
  std::string out = "tick";
  for (const auto& series : set.all()) {
    out += ",";
    out += series.name();
  }
  out += "\n";
  // Rows run to the *longest* series - bounding by the first would silently
  // drop the tail of any longer series. Shorter series emit empty cells; the
  // tick column comes from the first series that still has a sample at the
  // row index (the series of a set share one sampling grid).
  std::size_t rows = 0;
  for (const auto& series : set.all()) {
    rows = std::max(rows, series.size());
  }
  char buffer[64];
  for (std::size_t i = 0; i < rows; ++i) {
    for (const auto& series : set.all()) {
      if (i < series.size()) {
        std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(series.tick_at(i)));
        out += buffer;
        break;
      }
    }
    for (const auto& series : set.all()) {
      if (i < series.size()) {
        std::snprintf(buffer, sizeof(buffer), ",%.4f", series.value_at(i));
      } else {
        std::snprintf(buffer, sizeof(buffer), ",");
      }
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

std::string RunSummaryToCsv(const RunResult& result) {
  // Rendered from the metric schema: the registry owns the column list, the
  // order and the per-run presence rules (DVFS columns only appear when the
  // run was governed), so this stays byte-identical to the historical
  // hand-rolled format without repeating it.
  std::string out;
  for (const MetricValue& metric : MetricRegistry::Global().Scalars(result)) {
    out += metric.name;
    out += ',';
    out += FormatMetricValue(metric);
    out += '\n';
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  stream << contents;
  return static_cast<bool>(stream);
}

}  // namespace eas
