#include "src/sim/csv_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace eas {

std::string SeriesSetToCsv(const SeriesSet& set) {
  std::string out = "tick";
  for (const auto& series : set.all()) {
    out += ",";
    out += series.name();
  }
  out += "\n";
  // Rows run to the *longest* series - bounding by the first would silently
  // drop the tail of any longer series. Shorter series emit empty cells; the
  // tick column comes from the first series that still has a sample at the
  // row index (the series of a set share one sampling grid).
  std::size_t rows = 0;
  for (const auto& series : set.all()) {
    rows = std::max(rows, series.size());
  }
  char buffer[64];
  for (std::size_t i = 0; i < rows; ++i) {
    for (const auto& series : set.all()) {
      if (i < series.size()) {
        std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(series.tick_at(i)));
        out += buffer;
        break;
      }
    }
    for (const auto& series : set.all()) {
      if (i < series.size()) {
        std::snprintf(buffer, sizeof(buffer), ",%.4f", series.value_at(i));
      } else {
        std::snprintf(buffer, sizeof(buffer), ",");
      }
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

std::string RunSummaryToCsv(const RunResult& result) {
  std::string out;
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "migrations,%lld\n",
                static_cast<long long>(result.migrations));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "completions,%lld\n",
                static_cast<long long>(result.completions));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "work_done_ticks,%.1f\n", result.work_done_ticks);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "duration_seconds,%.3f\n", result.duration_seconds);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "throughput,%.2f\n", result.Throughput());
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "avg_throttled_fraction,%.4f\n",
                result.AverageThrottledFraction());
  out += buffer;
  for (std::size_t cpu = 0; cpu < result.throttled_fraction.size(); ++cpu) {
    std::snprintf(buffer, sizeof(buffer), "throttled_fraction_cpu%zu,%.4f\n", cpu,
                  result.throttled_fraction[cpu]);
    out += buffer;
  }
  // DVFS columns are only present when the run was governed (the vectors
  // stay empty under the "none" governor, keeping ungoverned summaries
  // byte-identical to the pre-DVFS format).
  for (std::size_t cpu = 0; cpu < result.average_frequency.size(); ++cpu) {
    std::snprintf(buffer, sizeof(buffer), "avg_frequency_cpu%zu,%.4f\n", cpu,
                  result.average_frequency[cpu]);
    out += buffer;
  }
  for (std::size_t cpu = 0; cpu < result.pstate_residency.size(); ++cpu) {
    for (std::size_t p = 0; p < result.pstate_residency[cpu].size(); ++p) {
      std::snprintf(buffer, sizeof(buffer), "pstate_residency_cpu%zu_p%zu,%.4f\n", cpu, p,
                    result.pstate_residency[cpu][p]);
      out += buffer;
    }
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) {
    return false;
  }
  stream << contents;
  return static_cast<bool>(stream);
}

}  // namespace eas
