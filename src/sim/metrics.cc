#include "src/sim/metrics.h"

#include <cstdio>
#include <utility>

namespace eas {
namespace {

MetricValue Integral(std::string name, double value) {
  MetricValue metric;
  metric.name = std::move(name);
  metric.value = value;
  metric.integral = true;
  return metric;
}

MetricValue Fractional(std::string name, double value, int precision) {
  MetricValue metric;
  metric.name = std::move(name);
  metric.value = value;
  metric.precision = precision;
  return metric;
}

}  // namespace

std::string FormatMetricValue(const MetricValue& value) {
  char buffer[64];
  if (value.integral) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value.value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", value.precision, value.value);
  }
  return buffer;
}

const MetricRegistry& MetricRegistry::Global() {
  static const MetricRegistry* registry = [] {
    auto* r = new MetricRegistry();
    RegisterBuiltinMetrics(*r);
    return r;
  }();
  return *registry;
}

std::vector<MetricValue> MetricRegistry::Scalars(const RunResult& result) const {
  std::vector<std::pair<std::string, ScalarExpander>> scalars;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scalars = scalars_;
  }
  std::vector<MetricValue> values;
  for (const auto& [family, expander] : scalars) {
    expander(result, values);
  }
  return values;
}

std::vector<MetricRegistry::SeriesColumn> MetricRegistry::Series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_;
}

void MetricRegistry::RegisterScalar(const std::string& family, ScalarExpander expander) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_.emplace_back(family, std::move(expander));
}

void MetricRegistry::RegisterSeries(const std::string& name,
                                    const SeriesSet& (*series)(const RunResult&)) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.push_back(SeriesColumn{name, series});
}

void RegisterBuiltinMetrics(MetricRegistry& registry) {
  // Order is load-bearing: this is the historical summary-CSV layout, and
  // the golden tests pin the rendered bytes.
  registry.RegisterScalar("migrations", [](const RunResult& r, std::vector<MetricValue>& out) {
    out.push_back(Integral("migrations", static_cast<double>(r.migrations)));
  });
  registry.RegisterScalar("completions", [](const RunResult& r, std::vector<MetricValue>& out) {
    out.push_back(Integral("completions", static_cast<double>(r.completions)));
  });
  registry.RegisterScalar("work_done_ticks", [](const RunResult& r,
                                                std::vector<MetricValue>& out) {
    out.push_back(Fractional("work_done_ticks", r.work_done_ticks, 1));
  });
  registry.RegisterScalar("duration_seconds", [](const RunResult& r,
                                                 std::vector<MetricValue>& out) {
    out.push_back(Fractional("duration_seconds", r.duration_seconds, 3));
  });
  registry.RegisterScalar("throughput", [](const RunResult& r, std::vector<MetricValue>& out) {
    out.push_back(Fractional("throughput", r.Throughput(), 2));
  });
  registry.RegisterScalar("avg_throttled_fraction",
                          [](const RunResult& r, std::vector<MetricValue>& out) {
                            out.push_back(Fractional("avg_throttled_fraction",
                                                     r.AverageThrottledFraction(), 4));
                          });
  registry.RegisterScalar("throttled_fraction_cpu",
                          [](const RunResult& r, std::vector<MetricValue>& out) {
                            for (std::size_t cpu = 0; cpu < r.throttled_fraction.size(); ++cpu) {
                              out.push_back(Fractional(
                                  "throttled_fraction_cpu" + std::to_string(cpu),
                                  r.throttled_fraction[cpu], 4));
                            }
                          });
  // The DVFS families expand to nothing for an ungoverned run (the vectors
  // stay empty under the "none" governor), which is what keeps ungoverned
  // tables byte-identical to the pre-DVFS format.
  registry.RegisterScalar("avg_frequency_cpu",
                          [](const RunResult& r, std::vector<MetricValue>& out) {
                            for (std::size_t cpu = 0; cpu < r.average_frequency.size(); ++cpu) {
                              out.push_back(Fractional("avg_frequency_cpu" + std::to_string(cpu),
                                                       r.average_frequency[cpu], 4));
                            }
                          });
  registry.RegisterScalar(
      "pstate_residency_cpu",
      [](const RunResult& r, std::vector<MetricValue>& out) {
        for (std::size_t cpu = 0; cpu < r.pstate_residency.size(); ++cpu) {
          for (std::size_t p = 0; p < r.pstate_residency[cpu].size(); ++p) {
            out.push_back(Fractional(
                "pstate_residency_cpu" + std::to_string(cpu) + "_p" + std::to_string(p),
                r.pstate_residency[cpu][p], 4));
          }
        }
      });

  // The fault families follow the same conditional pattern: the optionals
  // are only set when the config carried a fault plan, so fault-free runs
  // emit no fault columns and their records stay byte-identical.
  registry.RegisterScalar("faults_fired", [](const RunResult& r, std::vector<MetricValue>& out) {
    if (r.faults_fired.has_value()) {
      out.push_back(Integral("faults_fired", static_cast<double>(*r.faults_fired)));
    }
  });
  registry.RegisterScalar("offline_cpu_ticks",
                          [](const RunResult& r, std::vector<MetricValue>& out) {
                            if (r.offline_cpu_ticks.has_value()) {
                              out.push_back(Integral("offline_cpu_ticks",
                                                     static_cast<double>(*r.offline_cpu_ticks)));
                            }
                          });

  registry.RegisterSeries("thermal_power",
                          [](const RunResult& r) -> const SeriesSet& { return r.thermal_power; });
  registry.RegisterSeries("temperature",
                          [](const RunResult& r) -> const SeriesSet& { return r.temperature; });
  registry.RegisterSeries("task_cpu",
                          [](const RunResult& r) -> const SeriesSet& { return r.task_cpu; });
  registry.RegisterSeries("frequency",
                          [](const RunResult& r) -> const SeriesSet& { return r.frequency; });
}

}  // namespace eas
