#include "src/sim/simulation_state.h"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "src/counters/calibration.h"

namespace eas {

SimulationState::SimulationState(const MachineConfig& config)
    : config_(config),
      domains_(DomainHierarchy::Build(config.topology)),
      rng_(config.seed) {
  const std::size_t logical = config_.topology.num_logical();
  const std::size_t physical = config_.topology.num_physical();
  const std::size_t siblings = config_.topology.smt_per_physical();
  assert(config_.cooling.num_physical() >= physical);

  // Calibrated estimator: either injected weights or a fresh calibration run
  // against the machine's power meter (the realistic path).
  EventWeights weights;
  if (config_.estimator_weights.has_value()) {
    weights = *config_.estimator_weights;
  } else {
    weights = Calibrator::CalibrateDefault(config_.model, config_.seed ^ 0xca11b7a7eULL,
                                           config_.meter_error_stddev)
                  .weights;
  }
  estimator_ = std::make_unique<EnergyEstimator>(
      weights, config_.model.active_base_power() / static_cast<double>(siblings));

  const double idle_logical = IdlePowerPerLogical();

  // Per-logical max power, in logical-CPU order (phys = cpu mod physical).
  max_power_logical_.reserve(logical);
  for (std::size_t cpu = 0; cpu < logical; ++cpu) {
    const std::size_t phys = config_.topology.PhysicalOf(static_cast<int>(cpu));
    const ThermalParams& params = config_.cooling.ParamsFor(phys);
    double max_physical;
    if (config_.explicit_max_power_physical.has_value()) {
      max_physical = *config_.explicit_max_power_physical;
    } else {
      max_physical = params.MaxPowerForTemp(config_.temp_limit);
    }
    max_power_logical_.push_back(max_physical / static_cast<double>(siblings));
  }

  // One shard per package. Reserved up front: the shards never move, so the
  // flat per-logical pointer tables below (and the runnable-counter pointer
  // each runqueue holds into its shard) stay valid for the state's lifetime.
  shards_.reserve(physical);
  for (std::size_t phys = 0; phys < physical; ++phys) {
    shards_.emplace_back(config_.cooling.ParamsFor(phys), config_.pstates,
                         config_.throttle_hysteresis_watts, config_.model.halt_power());
    PackageShard& shard = shards_.back();
    shard.runqueues.reserve(siblings);
    shard.counters.reserve(siblings);
    shard.power_states.reserve(siblings);
    shard.throttles.reserve(siblings);
    for (std::size_t t = 0; t < siblings; ++t) {
      const int cpu = config_.topology.LogicalId(phys, t);
      shard.runqueues.emplace_back(cpu);
      shard.runqueues.back().AttachRunnableCounter(&shard.runnable);
      shard.counters.emplace_back();
      shard.power_states.emplace_back(max_power_logical_[static_cast<std::size_t>(cpu)],
                                      config_.cooling.ParamsFor(phys).TimeConstant(),
                                      idle_logical);
      shard.throttles.emplace_back(config_.throttle_hysteresis_watts);
    }
  }

  // Flat O(1) lookup tables, logical-CPU indexed.
  runqueue_by_cpu_.resize(logical);
  counter_by_cpu_.resize(logical);
  power_state_by_cpu_.resize(logical);
  throttle_by_cpu_.resize(logical);
  for (std::size_t cpu = 0; cpu < logical; ++cpu) {
    const std::size_t phys = config_.topology.PhysicalOf(static_cast<int>(cpu));
    const std::size_t t = config_.topology.ThreadOf(static_cast<int>(cpu));
    PackageShard& shard = shards_[phys];
    runqueue_by_cpu_[cpu] = &shard.runqueues[t];
    counter_by_cpu_[cpu] = &shard.counters[t];
    power_state_by_cpu_[cpu] = &shard.power_states[t];
    throttle_by_cpu_[cpu] = &shard.throttles[t];
  }

  // Fault layer: healthy masks always exist (CpuOnline() must answer even
  // on fault-free machines); the event queue only fills from a plan.
  cpu_online_.assign(logical, 1);
  online_siblings_.assign(physical, static_cast<std::int64_t>(siblings));
  emergency_until_.assign(physical, 0);
  clamp_until_.assign(physical, 0);
  clamp_floor_.assign(physical, 0);
  if (config_.faulted()) {
    std::string fault_error;
    const std::optional<FaultPlan> plan =
        ParseFaultPlan(config_.fault_spec, config_.topology, &fault_error);
    if (!plan.has_value()) {
      throw std::invalid_argument("bad fault spec: " + fault_error);
    }
    for (std::size_t i = 0; i < plan->events.size(); ++i) {
      fault_queue_.Push(plan->events[i].tick, static_cast<std::int64_t>(i), plan->events[i]);
    }
  }
}

SimulationState::~SimulationState() {
  // Arena-allocated: destroy explicitly (the arena only releases memory).
  for (Task* task : tasks_) {
    task->~Task();
  }
}

double SimulationState::IdlePowerPerLogical() const {
  return config_.model.halt_power() / static_cast<double>(config_.topology.smt_per_physical());
}

double SimulationState::MaxPowerPhysical(std::size_t physical) const {
  const int first_logical = config_.topology.LogicalId(physical, 0);
  return max_power_logical_[static_cast<std::size_t>(first_logical)] *
         static_cast<double>(config_.topology.smt_per_physical());
}

double SimulationState::RunqueuePower(int cpu) const {
  return runqueue(cpu).AveragePower(IdlePowerPerLogical());
}

double SimulationState::ThermalPower(int cpu) const {
  return power_state_by_cpu_[static_cast<std::size_t>(cpu)]->thermal_power();
}

double SimulationState::PackageThermalPower(std::size_t physical) const {
  const PackageShard& shard = shards_[physical];
  double sum = 0.0;
  for (const CpuPowerState& power : shard.power_states) {
    sum += power.thermal_power();
  }
  return sum;
}

double SimulationState::MaxPower(int cpu) const {
  return max_power_logical_[static_cast<std::size_t>(cpu)];
}

int SimulationState::TaskCpu(const Task& task) {
  if (task.state() == TaskState::kSleeping || task.state() == TaskState::kFinished) {
    return kInvalidCpu;
  }
  return task.cpu();
}

Task* SimulationState::Spawn(const Program& program, int nice) {
  void* slot = task_arena_.allocate(sizeof(Task), alignof(Task));
  Task* raw = new (slot) Task(next_task_id_++, &program, rng_.NextU64());
  raw->AttachHotColumns(&hot_, hot_.AddRow());
  raw->set_nice(nice);
  // The profile's standard period stays the nice-0 timeslice for every task:
  // the variable-period exponential average normalizes any actual period
  // length (Section 3.3), so profiles of tasks with different priorities
  // remain comparable.
  raw->profile() = EnergyProfile(config_.profile_sample_weight, config_.timeslice_ticks);
  tasks_.push_back(raw);

  const int cpu = PlaceTask(*raw);
  if (!config_.sched.energy_aware_placement) {
    // The baseline still needs a profile seed so balancing math is defined;
    // stock Linux simply has no energy profile, which corresponds to seeding
    // with the registry default (no per-binary knowledge).
    raw->profile().Seed(registry_.default_power());
  }
  raw->set_timeslice_left(Task::TimesliceForNice(raw->nice(), config_.timeslice_ticks));
  runqueue(cpu).Enqueue(raw);
  return raw;
}

int SimulationState::PlaceTask(Task& task) {
  if (config_.sched.energy_aware_placement) {
    return placement_.Place(task, *this, registry_);
  }
  return PlaceLeastLoadedRandomTie();
}

int SimulationState::PlaceLeastLoadedRandomTie() {
  // Stock Linux 2.6 exec placement through the domain hierarchy: least
  // loaded CPU, preferring an idle *package* over the idle sibling of a
  // busy one (SMT-aware). Remaining ties break randomly, modelling the
  // incidental state (exec'ing CPU, parent's cache) that decides in a real
  // system, without biasing toward CPU 0.
  // Offline CPUs never receive placements; with every CPU online the
  // guards vanish and the scan is the historical one, bit for bit.
  std::size_t min_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    if (cpu_online_[cpu] == 0) {
      continue;
    }
    min_load = std::min(min_load, runqueue(static_cast<int>(cpu)).nr_running());
  }
  std::size_t min_package_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    if (cpu_online_[cpu] == 0 || runqueue(static_cast<int>(cpu)).nr_running() != min_load) {
      continue;
    }
    std::size_t package_load = 0;
    for (int sibling : config_.topology.SiblingsOf(static_cast<int>(cpu))) {
      package_load += runqueue(sibling).nr_running();
    }
    min_package_load = std::min(min_package_load, package_load);
  }
  std::vector<int> candidates;
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    if (cpu_online_[cpu] == 0 || runqueue(static_cast<int>(cpu)).nr_running() != min_load) {
      continue;
    }
    std::size_t package_load = 0;
    for (int sibling : config_.topology.SiblingsOf(static_cast<int>(cpu))) {
      package_load += runqueue(sibling).nr_running();
    }
    if (package_load == min_package_load) {
      candidates.push_back(static_cast<int>(cpu));
    }
  }
  return candidates[rng_.NextBelow(candidates.size())];
}

void SimulationState::SetCpuOnline(int cpu, bool online) {
  std::uint8_t& flag = cpu_online_[static_cast<std::size_t>(cpu)];
  if ((flag != 0) == online) {
    return;
  }
  flag = online ? 1 : 0;
  const std::size_t phys = config_.topology.PhysicalOf(cpu);
  online_siblings_[phys] += online ? 1 : -1;
  offline_cpus_ += online ? -1 : 1;
}

bool SimulationState::FaultQuiescent() const {
  if (offline_cpus_ != 0) {
    return false;
  }
  for (std::size_t phys = 0; phys < shards_.size(); ++phys) {
    if (EmergencyActive(phys) || ClampActive(phys)) {
      return false;
    }
    // Ungoverned machines have no FrequencyPhase to walk a clamped domain
    // back to P0, so a domain still off P0 keeps the span ineligible (the
    // FaultPhase restores it when the clamp expires).
    if (!config_.governed() && shards_[phys].freq_domain.current() != 0) {
      return false;
    }
  }
  return true;
}

int SimulationState::PickOnlineFallback(int excluding) const {
  int best = excluding;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    const int candidate = static_cast<int>(cpu);
    if (candidate == excluding || cpu_online_[cpu] == 0) {
      continue;
    }
    const std::size_t load = runqueue(candidate).nr_running();
    if (load < best_load) {
      best_load = load;
      best = candidate;
    }
  }
  return best;
}

bool SimulationState::MigrateTask(Task* task, int from, int to) {
  if (from == to) {
    return false;
  }
  if (cpu_online_[static_cast<std::size_t>(to)] == 0) {
    return false;  // never migrate onto an offlined CPU
  }
  Runqueue& src = runqueue(from);
  Runqueue& dst = runqueue(to);

  if (src.current() == task) {
    CommitPeriod(*task);
    src.TakeCurrent();
  } else if (!src.Remove(task)) {
    return false;
  }

  const bool crossed_node = !config_.topology.SameNode(from, to);
  task->NoteMigration(crossed_node, crossed_node ? config_.warmup_ticks_cross_node
                                                 : config_.warmup_ticks_same_node);
  dst.Enqueue(task);
  ++migration_count_;
  return true;
}

void SimulationState::CommitPeriod(Task& task) {
  const bool first = task.first_period_pending();
  const Tick period = task.period_ticks();
  const double energy = task.CommitAccountingPeriod();
  if (first && period > 0) {
    registry_.RecordFirstTimeslice(task.program().binary_id(),
                                   energy / TicksToSeconds(period));
  }
}

void SimulationState::StartSleep(Task& task, Tick duration) {
  task.set_state(TaskState::kSleeping);
  task.set_wake_tick(now_ + duration);
  wake_queue_.Push(task.wake_tick(), task.id(), &task);
}

void SimulationState::ScheduleArrival(const Program& program, int nice, Tick tick) {
  arrival_queue_.Push(tick, next_arrival_seq_++, PendingArrival{&program, nice});
}

void SimulationState::ClearPendingArrivals() { arrival_queue_.Clear(); }

void SimulationState::SwitchInIfIdle(int cpu) {
  Runqueue& rq = runqueue(cpu);
  if (rq.current() != nullptr) {
    return;
  }
  Task* next = rq.PickNext();
  if (next != nullptr) {
    next->set_timeslice_left(Task::TimesliceForNice(next->nice(), config_.timeslice_ticks));
    next->BeginAccountingPeriod();
  }
}

double SimulationState::TotalWorkDone() const {
  double total = 0.0;
  for (const Task* task : tasks_) {
    total += task->work_done_ticks() +
             static_cast<double>(task->completions()) *
                 static_cast<double>(task->program().total_work_ticks());
  }
  return total;
}

std::int64_t SimulationState::TotalCompletions() const {
  std::int64_t total = 0;
  for (const Task* task : tasks_) {
    total += task->completions();
  }
  return total;
}

double SimulationState::TotalTaskEnergy() const {
  double total = 0.0;
  for (const Task* task : tasks_) {
    total += task->total_energy();
  }
  return total;
}

}  // namespace eas
