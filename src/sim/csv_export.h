// CSV export of experiment traces, for plotting the paper's figures with
// external tools.

#ifndef SRC_SIM_CSV_EXPORT_H_
#define SRC_SIM_CSV_EXPORT_H_

#include <string>

#include "src/base/series.h"
#include "src/sim/experiment.h"

namespace eas {

// Renders a SeriesSet as CSV: first column the tick of the first series'
// samples (all series of a RunResult share the sampling grid), one column
// per series, header row with series names.
std::string SeriesSetToCsv(const SeriesSet& set);

// Renders the headline scalars of a run as "key,value" lines, in the
// metric-schema order (src/sim/metrics.h). Kept as the single-run
// compatibility surface; new code should stream RunRecords into a CsvSink
// (src/api/result_sink.h), which renders the same schema.
std::string RunSummaryToCsv(const RunResult& result);

// Writes `contents` to `path`; returns false on I/O failure.
bool WriteFile(const std::string& path, const std::string& contents);

}  // namespace eas

#endif  // SRC_SIM_CSV_EXPORT_H_
