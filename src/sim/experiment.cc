#include "src/sim/experiment.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/sim/accounting.h"
#include "src/sim/invariant_checker.h"

namespace eas {

double RunResult::AverageThrottledFraction() const {
  if (throttled_fraction.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double f : throttled_fraction) {
    sum += f;
  }
  return sum / static_cast<double>(throttled_fraction.size());
}

double RunResult::AverageFrequencyMultiplier() const {
  if (average_frequency.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  for (double f : average_frequency) {
    sum += f;
  }
  return sum / static_cast<double>(average_frequency.size());
}

double RunResult::MaxThermalSpreadAfter(Tick tick) const {
  // Spread of the thermal power curves, evaluated at each sample time past
  // `tick` (lets tests skip the warm-up transient).
  double max_spread = 0.0;
  if (thermal_power.size() == 0) {
    return 0.0;
  }
  const Series& first = thermal_power.at(0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    const Tick t = first.tick_at(i);
    if (t < tick) {
      continue;
    }
    max_spread = std::max(max_spread, thermal_power.SpreadAt(t));
  }
  return max_spread;
}

Experiment::Experiment(const MachineConfig& config, const Options& options)
    : options_(options), machine_(std::make_unique<Machine>(config)) {}

RunResult Experiment::Run(const std::vector<const Program*>& programs) {
  return Run(Workload(programs));
}

RunResult Experiment::Run(const Workload& workload) {
  RunResult result;
  const std::vector<TaskArrival>& arrivals = workload.arrivals();

  // Initial spawn set: everything that arrives at or before the run start.
  std::vector<Task*> spawned;
  std::size_t next = 0;
  while (next < arrivals.size() && arrivals[next].tick <= 0) {
    spawned.push_back(machine_->Spawn(*arrivals[next].program, arrivals[next].nice));
    ++next;
  }

  // Later arrivals go through the engine's event queue: they spawn at the
  // start of their tick, before that tick's wakeups, which is exactly when
  // the chunked stop-and-spawn loop this replaced injected them. An arrival
  // at or past the end tick never spawns (no tick starts at `now` >= the
  // duration), matching the old loop's cutoff. Arrival ticks are relative to
  // the run start: a machine that already ran keeps its tick counter.
  const Tick start = machine_->now();
  for (; next < arrivals.size(); ++next) {
    machine_->state().ScheduleArrival(*arrivals[next].program, arrivals[next].nice,
                                      start + arrivals[next].tick);
  }

  Accounting::Options accounting_options;
  accounting_options.sample_interval_ticks = options_.sample_interval_ticks;
  Accounting accounting(machine_->state(), accounting_options);
  if (options_.record_task_cpu) {
    for (const Task* task : spawned) {
      accounting.TraceTask(task);
    }
  }

  // Faulted runs carry the invariant checker for their whole duration: a
  // chaos schedule that loses a task or unbalances a ledger throws out of
  // Run instead of producing silently-wrong records.
  std::unique_ptr<InvariantChecker> checker;
  if (machine_->config().faulted()) {
    checker = std::make_unique<InvariantChecker>(machine_->state());
    machine_->engine().AddObserver(checker.get());
  }

  machine_->engine().AddObserver(&accounting);
  machine_->Run(options_.duration_ticks);
  machine_->engine().RemoveObserver(&accounting);
  if (checker != nullptr) {
    machine_->engine().RemoveObserver(checker.get());
  }
  // Arrivals scheduled at or past the duration are still pending; a later
  // run on this machine must not inherit them.
  machine_->state().ClearPendingArrivals();

  result.thermal_power = std::move(accounting.thermal_power());
  result.temperature = std::move(accounting.temperature());
  result.task_cpu = std::move(accounting.task_cpu());
  result.frequency = std::move(accounting.frequency());

  result.migrations = machine_->migration_count();
  result.completions = machine_->TotalCompletions();
  result.work_done_ticks = machine_->TotalWorkDone();
  result.duration_seconds = TicksToSeconds(options_.duration_ticks);
  const CpuTopology& topology = machine_->config().topology;
  for (std::size_t cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    const ThrottleController& logical = machine_->throttle(static_cast<int>(cpu));
    if (logical.demand_ticks() > 0) {
      result.throttled_fraction.push_back(logical.ThrottledFraction());
    } else {
      // Zero runnable demand the whole run: the per-logical count is 0/N by
      // construction, which would hide the package halt entirely. Report the
      // package's halt fraction instead, consistent with what the hlt gate
      // actually did to this CPU.
      const std::size_t phys = topology.PhysicalOf(static_cast<int>(cpu));
      result.throttled_fraction.push_back(
          machine_->state().package_throttle(phys).ThrottledFraction());
    }
  }
  if (machine_->config().governed()) {
    for (std::size_t cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
      const FrequencyDomain& domain =
          machine_->state().freq_domain(topology.PhysicalOf(static_cast<int>(cpu)));
      std::vector<double> residency;
      residency.reserve(domain.table().size());
      for (std::size_t p = 0; p < domain.table().size(); ++p) {
        residency.push_back(domain.ResidencyFraction(p));
      }
      result.pstate_residency.push_back(std::move(residency));
      result.average_frequency.push_back(domain.AverageFrequency());
    }
  }
  if (machine_->config().faulted()) {
    result.faults_fired = machine_->state().faults_fired();
    result.offline_cpu_ticks = machine_->state().offline_cpu_ticks();
  }
  return result;
}

double ThroughputIncrease(const RunResult& baseline, const RunResult& test) {
  const double base = baseline.Throughput();
  if (base <= 0.0) {
    return 0.0;
  }
  return (test.Throughput() - base) / base;
}

}  // namespace eas
