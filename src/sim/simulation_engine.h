// The per-tick pipeline, orchestrating the phase components.
//
// One engine tick reproduces the paper's modified kernel tick:
//
//   0. FaultPhase::Run             - due fault-plan events mutate the machine
//                                    (only on faulted configs; see
//                                    src/sim/fault_phase.h)
//   1. SchedTick::SpawnArrivals    - workload arrivals due this tick spawn
//      SchedTick::WakeSleepers     - expired sleeps re-enter their runqueues
//   2. per physical package:
//      a. ThrottleGate::GatePackage    - hlt decision on summed thermal power
//      b. FrequencyPhase::GovernPackage- DVFS governor picks the P-state
//      c. SchedTick::SwitchInPackage   - idle siblings pick their next task
//      d. ThrottleGate::AccountCpuTicks- Table 3 statistics
//      e. SchedTick::SelectActive / ExecuteActive - run tasks at the
//                                        P-state's speed, emit events
//      f. CounterSampler::Sample       - counters, estimator, energy metrics
//                                        (P-state voltage scaling applied)
//      g. ThermalStepper::StepPackage  - true power, RC temperature step
//      h. SchedTick::HandleLifecycle   - blocking / completion / expiry
//   3. BalancePhase::Run           - the registry-selected policy plus hot
//                                    task migration, on their intervals
//   4. tick counter advance, then TickObservers (accounting, tracing)
//
// The engine holds no machine state; everything lives in SimulationState,
// so phases are individually testable and engines are cheap.

#ifndef SRC_SIM_SIMULATION_ENGINE_H_
#define SRC_SIM_SIMULATION_ENGINE_H_

#include <memory>
#include <vector>

#include "src/core/hot_task_migrator.h"
#include "src/sched/balance_policy.h"
#include "src/sim/counter_sampler.h"
#include "src/sim/fault_phase.h"
#include "src/sim/frequency_phase.h"
#include "src/sim/package_worker_pool.h"
#include "src/sim/sched_tick.h"
#include "src/sim/simulation_state.h"
#include "src/sim/thermal_stepper.h"
#include "src/sim/throttle_gate.h"

namespace eas {

// Observes completed engine ticks (e.g. the accounting that records the
// experiment traces). Observers run after the tick counter has advanced.
class TickObserver {
 public:
  virtual ~TickObserver() = default;
  virtual void OnTick(const SimulationState& state) = 0;

  // Skip-ahead contract: the earliest now value strictly after `now` at
  // which OnTick does observable work. At every now value before that,
  // OnTick must be a no-op - the engine's quiescent fast path advances the
  // clock in bulk and only invokes observers at span boundaries, so a
  // sparse observer (accounting on a sampling grid) does not force per-tick
  // stepping. The default declares every tick observable, which keeps any
  // observer that does not opt in on the exact per-tick path.
  virtual Tick NextObservableTick(Tick now) const { return now + 1; }
};

// Periodic balancing: runs the policy selected by name through the
// BalancePolicyRegistry, plus hot task migration, each on its interval with
// per-CPU stagger. The phase is configured entirely by the sched config it
// was constructed with (policy, options, cadence) - the state it runs over
// only provides machine state, so an engine never silently mixes its own
// policy with a foreign state's cadence.
class BalancePhase {
 public:
  // Resolves the policy via BalancePolicyRegistry::Global(); throws
  // std::invalid_argument for an unknown policy name.
  explicit BalancePhase(const EnergySchedConfig& sched);

  void Run(SimulationState& state);

  const BalancePolicy& policy() const { return *policy_; }

 private:
  EnergySchedConfig sched_;
  std::unique_ptr<BalancePolicy> policy_;
  HotTaskMigrator hot_migrator_;
};

class SimulationEngine {
 public:
  explicit SimulationEngine(const EnergySchedConfig& sched);

  // Advances `state` by one tick through the full pipeline. With
  // config().intra_run_threads == 0 this is the historical interleaved
  // per-package loop (phases 2a-2h complete for package p before package
  // p+1 starts); with >= 1 it is the sharded pipeline: every package runs
  // its package-local phases 2a-2g over the intra-run worker pool (each
  // package touches only its own shard, so the fan-out is race-free), then
  // the cross-package phase 2h (task lifecycle: sleeps, completions,
  // respawn placement, registry commits) runs sequentially in package
  // order. The sharded pipeline's results depend only on that fixed phase
  // order, never on the worker count, so any counts >= 1 are bit-identical
  // to one another.
  void Tick(SimulationState& state);

  // Advances `state` by `ticks` ticks, end-state and trace bit-identical to
  // calling Tick that many times. When the machine is quiescent (no task
  // runnable or running anywhere), the configured policy's idle passes are
  // proven no-ops, and config().skip_ahead is set, spans up to the next
  // interesting tick - earliest wake, arrival, observer sample, or the run
  // budget - are advanced through a reduced kernel instead of the full
  // pipeline:
  //  - ungoverned machines with throttling disabled integrate the whole
  //    span in closed form (bulk exponential-average and RC updates that
  //    reproduce the per-tick recurrences bit for bit, stopping early at
  //    their floating-point fixed points) and jump the clock;
  //  - governed or throttling machines step tick by tick through only the
  //    phases an idle tick actually exercises (gate, governor, idle energy
  //    credit, thermal step), skipping heap peeks, switch-in, execution,
  //    lifecycle and balancing, all of which are provably no-ops.
  void Advance(SimulationState& state, eas::Tick ticks);

  void AddObserver(TickObserver* observer);
  void RemoveObserver(TickObserver* observer);

  const BalancePolicy& policy() const { return balance_.policy(); }

 private:
  // The historical interleaved tick (intra_run_threads == 0).
  void TickInterleaved(SimulationState& state);

  // The package-parallel tick (intra_run_threads >= 1): package-local
  // phases over the worker pool, then sequential lifecycle and balancing.
  void TickSharded(SimulationState& state);

  // Builds the worker pool and the per-worker / per-package scratch for
  // `state`'s machine on first use (and eagerly initializes the frequency
  // governors, whose lazy construction is not safe inside the fan-out).
  void EnsureShardedRuntime(SimulationState& state);

  // Integrates a quiescent span of `span` ticks in bulk (ungoverned,
  // throttling disabled). Does not invoke observers.
  void RunQuiescentSpanFast(SimulationState& state, eas::Tick span);

  // Steps a quiescent span tick by tick through the reduced idle kernel
  // (governor and throttle decisions depend on the evolving thermal state,
  // so they run every tick). Invokes observers like the full pipeline.
  void RunQuiescentSpanSlow(SimulationState& state, eas::Tick span);

  SchedTick sched_tick_;
  FaultPhase fault_;
  ThrottleGate throttle_gate_;
  FrequencyPhase frequency_;
  CounterSampler counter_sampler_;
  ThermalStepper thermal_stepper_;
  BalancePhase balance_;
  std::vector<TickObserver*> observers_;

  // Per-tick scratch, reused across packages to avoid reallocation.
  std::vector<int> active_;
  std::vector<EventVector> events_;

  // Sharded-pipeline runtime, built on the first sharded tick. The active
  // lists are per package (they outlive the fan-out: the sequential
  // lifecycle phase replays them in package order); the samplers and event
  // scratch are per worker (CounterSampler keeps a reusable mask, and event
  // vectors are plain scratch, so one instance per concurrent caller).
  std::unique_ptr<PackageWorkerPool> pool_;
  std::vector<std::vector<int>> package_active_;
  std::vector<CounterSampler> worker_samplers_;
  std::vector<std::vector<EventVector>> worker_events_;
};

}  // namespace eas

#endif  // SRC_SIM_SIMULATION_ENGINE_H_
