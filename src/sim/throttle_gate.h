// Thermal-throttling phase (paper Sections 6.2/6.4).
//
// Thermal throttling is a package-level decision: only physical processors
// overheat, so the gate compares the sum of the sibling thermal powers
// against the package's maximum power and halts the whole package (hlt stops
// the core, not a logical thread). Per-logical statistics follow Table 3's
// semantics: a tick counts as throttled for a logical CPU when the package
// halt kept its task from running.

#ifndef SRC_SIM_THROTTLE_GATE_H_
#define SRC_SIM_THROTTLE_GATE_H_

#include <cstddef>

#include "src/base/annotations.h"
#include "src/sim/simulation_state.h"

namespace eas {

class ThrottleGate {
 public:
  // The package-level halt decision for this tick; always false (and no
  // statistics are recorded) when throttling is disabled.
  EAS_SHARD_LOCAL bool GatePackage(SimulationState& state, std::size_t physical) const;

  // Records this tick in the per-logical throttle statistics. Must run after
  // the scheduler's switch-in so "had a task to run" is well defined.
  EAS_SHARD_LOCAL void AccountCpuTicks(SimulationState& state, std::size_t physical,
                                       bool throttled) const;
};

}  // namespace eas

#endif  // SRC_SIM_THROTTLE_GATE_H_
