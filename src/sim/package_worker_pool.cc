#include "src/sim/package_worker_pool.h"

namespace eas {

PackageWorkerPool::PackageWorkerPool(std::size_t workers)
    : num_workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(num_workers_ - 1);
  for (std::size_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

PackageWorkerPool::~PackageWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void PackageWorkerPool::DrainItems(const Job& fn, std::size_t worker) {
  const std::size_t items = job_items_;
  while (true) {
    const std::size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= items) {
      break;
    }
    fn(item, worker);
  }
}

void PackageWorkerPool::Run(std::size_t items, const Job& fn) {
  if (items == 0) {
    return;
  }
  if (threads_.empty() || items == 1) {
    // Sequential degenerate case: same calls, same order, no hand-off.
    for (std::size_t item = 0; item < items; ++item) {
      fn(item, 0);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_items_ = items;
    next_item_.store(0, std::memory_order_relaxed);
    busy_helpers_ = threads_.size();
    ++generation_;
  }
  start_cv_.notify_all();

  DrainItems(fn, /*worker=*/0);

  // All items are claimed once the caller's drain exhausts the counter, but
  // a helper may still be inside its last fn call; completion is helpers
  // reporting idle, not the counter running out.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return busy_helpers_ == 0; });
  job_ = nullptr;
}

void PackageWorkerPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const Job* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      fn = job_;
    }
    DrainItems(*fn, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_helpers_;
      if (busy_helpers_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace eas
