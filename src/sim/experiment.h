// Experiment harness: runs workloads on a Machine and collects the
// quantities the paper's evaluation reports (thermal power traces, migration
// counts, throttle percentages, throughput).

#ifndef SRC_SIM_EXPERIMENT_H_
#define SRC_SIM_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/series.h"
#include "src/sim/machine.h"
#include "src/task/program.h"
#include "src/workloads/workload.h"

namespace eas {

struct RunResult {
  // Thermal power of every logical CPU, sampled over the run.
  SeriesSet thermal_power;
  // True temperature of every physical package.
  SeriesSet temperature;
  // Logical CPU of every task over time (Figure 9's residency trace);
  // kInvalidCpu while sleeping.
  SeriesSet task_cpu;
  // Frequency multiplier of every physical package over time. Only recorded
  // when the machine ran a frequency governor other than "none".
  SeriesSet frequency;

  std::int64_t migrations = 0;
  std::int64_t completions = 0;
  double work_done_ticks = 0.0;
  double duration_seconds = 0.0;

  // Per logical CPU fraction of time spent throttled (Table 3). A CPU that
  // had runnable demand at some point reports the fraction of run ticks the
  // package halt kept its task from running; a CPU with zero demand the
  // whole run reports its package's halt fraction (the hlt duty cycle it
  // would have experienced), so per-package halt is visible even on
  // all-sleeper packages.
  std::vector<double> throttled_fraction;

  // DVFS columns, populated only under a governor other than "none": per
  // logical CPU, the fraction of run ticks its package spent in each
  // P-state, and the tick-weighted average frequency multiplier.
  std::vector<std::vector<double>> pstate_residency;
  std::vector<double> average_frequency;

  // Fault-injection columns, populated only when the config carried a fault
  // plan (the DVFS-columns pattern: absent fields emit no CSV columns, so a
  // fault-free run's records stay byte-identical to pre-fault captures).
  std::optional<std::int64_t> faults_fired;
  std::optional<std::int64_t> offline_cpu_ticks;

  // Work per second: the throughput measure used for the paper's
  // "increase in throughput" numbers. (Tasks have fixed-size work units, so
  // work/second is proportional to tasks finished per time unit but does not
  // quantize at run boundaries.)
  double Throughput() const {
    return duration_seconds > 0.0 ? work_done_ticks / duration_seconds : 0.0;
  }

  double AverageThrottledFraction() const;

  // Mean of the per-CPU average frequency multipliers; 1.0 for an
  // ungoverned run (no DVFS columns means every package sat at P0).
  double AverageFrequencyMultiplier() const;

  double MaxThermalSpreadAfter(Tick tick) const;
};

class Experiment {
 public:
  struct Options {
    Tick duration_ticks = 900'000;     // 15 minutes, the paper's run length
    Tick sample_interval_ticks = 500;  // trace sampling period
    bool record_task_cpu = false;      // Figure 9 residency trace
  };

  Experiment(const MachineConfig& config, const Options& options);

  // Runs `workload` for the configured duration: arrivals at tick <= 0 spawn
  // before the first tick, later arrivals are injected mid-run at their
  // tick (arrivals at or past the duration never spawn). Only the initial
  // spawn set is traced when `record_task_cpu` is set - mid-run arrivals
  // would not share the sampling grid's start.
  RunResult Run(const Workload& workload);

  // Legacy shape: spawns `programs` (in order) at tick 0.
  RunResult Run(const std::vector<const Program*>& programs);

  Machine& machine() { return *machine_; }

 private:
  Options options_;
  std::unique_ptr<Machine> machine_;
};

// Relative throughput increase of `test` over `baseline` (e.g. 0.05 = +5%).
double ThroughputIncrease(const RunResult& baseline, const RunResult& test);

}  // namespace eas

#endif  // SRC_SIM_EXPERIMENT_H_
