#include "src/sim/scenario_cache.h"

#include <utility>

namespace eas {

std::shared_ptr<const ScenarioSpec> ScenarioCache::Scenario(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = scenarios_.find(name);
  if (it != scenarios_.end()) {
    ++stats_.scenario_hits;
    return it->second;
  }
  ++stats_.scenario_misses;
  auto spec = std::make_shared<const ScenarioSpec>(registry_->BuildOrThrow(name));
  scenarios_.emplace(name, spec);
  return spec;
}

std::shared_ptr<const ProgramLibrary> ScenarioCache::DefaultLibrary(const EnergyModel& model) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (library_ != nullptr) {
    ++stats_.library_hits;
    return library_;
  }
  ++stats_.library_misses;
  library_ = std::make_shared<const ProgramLibrary>(model);
  return library_;
}

ScenarioCache::Stats ScenarioCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace eas
