#include "src/sim/accounting.h"

#include <string>

namespace eas {

Accounting::Accounting(const SimulationState& state, const Options& options)
    : options_(options), start_tick_(state.now()) {
  for (std::size_t cpu = 0; cpu < state.num_cpus(); ++cpu) {
    thermal_power_.Create("cpu" + std::to_string(cpu));
  }
  for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
    temperature_.Create("phys" + std::to_string(phys));
  }
  record_frequency_ = state.config().governed();
  if (record_frequency_) {
    for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
      frequency_.Create("freq" + std::to_string(phys));
    }
  }
}

void Accounting::TraceTask(const Task* task) {
  task_cpu_.Create(task->name() + "#" + std::to_string(task->id()));
  traced_.push_back(task);
}

void Accounting::OnTick(const SimulationState& state) {
  // Observers run after the tick counter advanced, so the tick that just
  // executed is now()-1; sample it, relative to the anchor, on the grid
  // 0, interval, 2*interval, ...
  const Tick tick = state.now() - 1 - start_tick_;
  if (tick < 0 || tick % options_.sample_interval_ticks != 0) {
    return;
  }
  for (std::size_t cpu = 0; cpu < state.num_cpus(); ++cpu) {
    thermal_power_.at(cpu).Add(tick, state.ThermalPower(static_cast<int>(cpu)));
  }
  for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
    temperature_.at(phys).Add(tick, state.Temperature(phys));
  }
  if (record_frequency_) {
    for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
      frequency_.at(phys).Add(tick, state.freq_domain(phys).frequency_multiplier());
    }
  }
  for (std::size_t i = 0; i < traced_.size(); ++i) {
    task_cpu_.at(i).Add(tick, static_cast<double>(SimulationState::TaskCpu(*traced_[i])));
  }
}

}  // namespace eas
