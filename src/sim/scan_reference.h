// The pre-event-queue tick loop, kept as an executable reference.
//
// Drives the exact phase pipeline of SimulationEngine::Tick, but wakes
// sleepers by scanning the whole task table and injects workload arrivals
// with an index catch-up loop at the start of each tick - the per-tick
// O(all-tasks-ever-spawned) behaviour the wake and arrival queues replaced.
// Used by bench/tick_hot_path.cc to measure the event-driven engine against
// its predecessor, and by tests/sim/tick_hot_path_test.cc to pin the two
// loops tick-for-tick bit-identical. Keeping the single reference here means
// an engine pipeline change cannot silently leave a stale copy behind.

#ifndef SRC_SIM_SCAN_REFERENCE_H_
#define SRC_SIM_SCAN_REFERENCE_H_

#include <cstddef>
#include <vector>

#include "src/sim/simulation_engine.h"
#include "src/workloads/workload.h"

namespace eas {

class ScanReferenceStepper {
 public:
  explicit ScanReferenceStepper(const EnergySchedConfig& sched) : balance_(sched) {}

  // One tick without arrivals (the workload was fully spawned up front).
  void Step(SimulationState& state) {
    std::size_t next = 0;
    Step(state, kNoArrivals(), next);
  }

  // One tick, first spawning every arrival in the sorted `arrivals` list due
  // at the current tick (`next` is the caller-held catch-up index).
  void Step(SimulationState& state, const std::vector<TaskArrival>& arrivals,
            std::size_t& next) {
    while (next < arrivals.size() && arrivals[next].tick <= state.now()) {
      state.Spawn(*arrivals[next].program, arrivals[next].nice);
      ++next;
    }
    for (const auto& task : state.tasks()) {
      if (task->state() == TaskState::kSleeping && task->wake_tick() <= state.now()) {
        state.runqueue(task->cpu()).EnqueueFront(task);
      }
    }
    const std::size_t physical = state.num_physical();
    for (std::size_t phys = 0; phys < physical; ++phys) {
      const bool throttled = throttle_gate_.GatePackage(state, phys);
      sched_tick_.SwitchInPackage(state, phys);
      throttle_gate_.AccountCpuTicks(state, phys, throttled);
      sched_tick_.SelectActive(state, phys, throttled, active_);
      sched_tick_.ExecuteActive(state, active_, events_);
      const double true_dynamic = counter_sampler_.Sample(state, phys, active_, events_);
      thermal_stepper_.StepPackage(state, phys, active_.size(), true_dynamic);
      for (int cpu : active_) {
        sched_tick_.HandleLifecycle(state, cpu);
      }
    }
    balance_.Run(state);
    // The shared lifecycle code pushes wake entries this loop never pops.
    // Draining every tick bounds the memory and keeps each push near O(1)
    // (the heap never exceeds one tick's sleep transitions); the push calls
    // themselves remain - a small overhead the original loop did not have,
    // slightly *understating* the engine's measured speedup.
    state.wake_queue().Clear();
    state.AdvanceTick();
  }

 private:
  static const std::vector<TaskArrival>& kNoArrivals() {
    static const std::vector<TaskArrival> none;
    return none;
  }

  SchedTick sched_tick_;
  ThrottleGate throttle_gate_;
  CounterSampler counter_sampler_;
  ThermalStepper thermal_stepper_;
  BalancePhase balance_;
  std::vector<int> active_;
  std::vector<EventVector> events_;
};

}  // namespace eas

#endif  // SRC_SIM_SCAN_REFERENCE_H_
