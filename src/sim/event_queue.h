// Tick-ordered event queues: the hot-path replacement for per-tick scans.
//
// The simulator's per-tick work must not grow with the number of tasks that
// ever existed: sleeper wakeups and workload arrivals are known in advance,
// so they live in min-heaps keyed (tick, order) and the engine only touches
// the entries that are due this tick. `order` makes ties deterministic - the
// wake queue uses the task id (reproducing the old task-table scan order),
// the arrival queue uses the insertion sequence (reproducing the sorted
// workload order) - so the event-driven engine is tick-for-tick identical to
// the scan-based one it replaced (pinned by tests/sim/tick_hot_path_test.cc
// and tests/sim/engine_pipeline_test.cc).

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace eas {

template <typename Payload>
class TickEventQueue {
 public:
  struct Entry {
    Tick tick = 0;             // when the event fires
    std::int64_t order = 0;    // deterministic tie-break within a tick
    Payload payload{};
  };

  void Push(Tick tick, std::int64_t order, Payload payload) {
    heap_.push_back(Entry{tick, order, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  // The entry with the smallest (tick, order), if it is due at `now`;
  // nullptr when the queue is empty or the earliest event is in the future.
  const Entry* PeekReady(Tick now) const {
    if (heap_.empty() || heap_.front().tick > now) {
      return nullptr;
    }
    return &heap_.front();
  }

  // Removes and returns the earliest entry. Precondition: !empty().
  Entry Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  // Tick of the earliest pending entry, `none` when the queue is empty. The
  // engine's skip-ahead uses this to bound a quiescent span without popping:
  // nothing in this queue can fire before the returned tick.
  Tick NextEventTick(Tick none) const { return heap_.empty() ? none : heap_.front().tick; }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  void Clear() { heap_.clear(); }

 private:
  // std::push_heap builds a max-heap; "later fires lower" makes it a min-heap
  // on (tick, order).
  static bool Later(const Entry& a, const Entry& b) {
    return a.tick > b.tick || (a.tick == b.tick && a.order > b.order);
  }

  std::vector<Entry> heap_;
};

}  // namespace eas

#endif  // SRC_SIM_EVENT_QUEUE_H_
