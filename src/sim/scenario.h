// Declarative scenarios: named, fully-specified experiments.
//
// A ScenarioSpec bundles everything one run needs - machine topology,
// cooling, thermal/throttle settings, scheduling policy, duration, seed and
// the workload (with timed arrivals) - so a scenario can be selected by
// name from a tool or bench and fanned through the parallel
// ExperimentRunner without touching engine code, mirroring how balancing
// policies are selected through the BalancePolicyRegistry.
//
// Built-in scenarios (the paper's workload mixes plus arrival-driven and
// phase-shift stressors, see src/sim/builtin_scenarios.cc) are registered on
// first access of ScenarioRegistry::Global(); new scenarios register a
// factory at runtime:
//
//   ScenarioRegistry::Global().Register(
//       "my-scenario", "one line of what it stresses", [] {
//         ScenarioSpec spec;
//         spec.config...; spec.options...; spec.workload...;
//         return spec;
//       });
//
// Factories build a fresh spec per call, so callers may freely override
// policy, duration or seed on the result.

#ifndef SRC_SIM_SCENARIO_H_
#define SRC_SIM_SCENARIO_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/experiment_runner.h"

namespace eas {

struct ScenarioSpec {
  std::string name;
  std::string description;
  MachineConfig config;         // topology + thermal/throttle + policy + seed
  Experiment::Options options;  // duration + sampling
  Workload workload;            // self-contained (owns generated programs)

  // The (config, options, workload) triple as a runner spec named `name`.
  ExperimentSpec ToExperimentSpec() const;
};

class ScenarioRegistry {
 public:
  using Factory = std::function<ScenarioSpec()>;

  struct Info {
    std::string name;
    std::string description;
  };

  // The process-wide registry, with the built-in scenarios pre-registered.
  static ScenarioRegistry& Global();

  // Registers `factory` under `name`. Returns false (and leaves the existing
  // entry) if the name is already taken.
  bool Register(const std::string& name, const std::string& description, Factory factory);

  // Builds a fresh spec for `name`; throws std::invalid_argument naming the
  // known scenarios when `name` is unknown.
  ScenarioSpec BuildOrThrow(const std::string& name) const;

  bool Contains(const std::string& name) const;

  // Registered names, sorted.
  std::vector<std::string> Names() const;

  // (name, description) of every registered scenario, sorted by name.
  std::vector<Info> List() const;

  // An empty registry (tests build private ones; Global() is the shared,
  // builtin-populated instance).
  ScenarioRegistry() = default;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::pair<std::string, Factory>> factories_;
};

// Registers the built-in scenarios into `registry` (exposed for tests that
// build private registries; Global() already includes them).
void RegisterBuiltinScenarios(ScenarioRegistry& registry);

}  // namespace eas

#endif  // SRC_SIM_SCENARIO_H_
