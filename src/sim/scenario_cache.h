// ScenarioCache: memoized scenario builds and the shared program library.
//
// Resolving a RunRequest is cheap except for two rebuild-per-request costs:
// a scenario factory regenerates its whole workload (program models plus
// every timed arrival - the datacenter-consolidation scenario synthesizes
// ~16k arrivals), and a non-scenario request constructs a fresh
// ProgramLibrary. A one-shot CLI run pays that once; a resident service
// (src/service) resolving thousands of requests against one warm process
// must not pay it per request. The cache memoizes both:
//
//   scenario specs     built once per name on first use, then shared. A
//                      factory is deterministic data -> data, so handing
//                      every request a copy of one build is observationally
//                      identical to rebuilding (ScenarioSpec copies share
//                      the immutable programs via the workload's
//                      shared_ptr ownership, exactly as seed sweeps always
//                      have).
//   program library    the default-model library non-scenario requests
//                      draw their programs from. The model is part of the
//                      default MachineConfig and identical for every such
//                      request, so one library serves them all; it is
//                      immutable after construction and safe to share
//                      across threads.
//
// Thread-safe; hit/miss counters feed the service status endpoint.

#ifndef SRC_SIM_SCENARIO_CACHE_H_
#define SRC_SIM_SCENARIO_CACHE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/sim/scenario.h"
#include "src/workloads/programs.h"

namespace eas {

class ScenarioCache {
 public:
  // Builds against the process-wide ScenarioRegistry::Global().
  ScenarioCache() : registry_(&ScenarioRegistry::Global()) {}

  // Tests inject private registries.
  explicit ScenarioCache(const ScenarioRegistry& registry) : registry_(&registry) {}

  // The cached spec for `name`, built on first use. Throws
  // std::invalid_argument (the registry's own diagnostic) for an unknown
  // name - callers gate on Contains() first, same as the uncached path.
  std::shared_ptr<const ScenarioSpec> Scenario(const std::string& name);

  // The shared default-model program library, built on first use.
  std::shared_ptr<const ProgramLibrary> DefaultLibrary(const EnergyModel& model);

  struct Stats {
    std::size_t scenario_hits = 0;
    std::size_t scenario_misses = 0;
    std::size_t library_hits = 0;
    std::size_t library_misses = 0;
  };
  Stats stats() const;

 private:
  const ScenarioRegistry* registry_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ScenarioSpec>> scenarios_;
  std::shared_ptr<const ProgramLibrary> library_;
  Stats stats_;
};

}  // namespace eas

#endif  // SRC_SIM_SCENARIO_CACHE_H_
