// The mutable state of one simulated machine, shared by the engine's phase
// components.
//
// SimulationState owns what the paper's modified kernel owns: per logical
// CPU runqueues, counters, power metrics and throttle statistics; per
// physical package RC thermal state, true power and the throttle decision;
// the calibrated estimator; the binary registry; and the task table. It
// implements BalanceEnv, so every balancing policy runs against it
// unchanged. The per-tick *behaviour* lives in the phase components
// (sched_tick, throttle_gate, counter_sampler, thermal_stepper) orchestrated
// by the SimulationEngine; state-owned helpers here are the primitives more
// than one phase needs (placement, period commit, migration).
//
// Shard ownership (the cluster-scale contract): all per-CPU and per-package
// mutable state lives in one PackageShard per physical package. During the
// engine's package phase loop - gate, governor, switch-in, tick accounting,
// execute, counter sampling, thermal step - a package's phases read and
// write only its own shard (plus the hot-column rows of tasks currently on
// its runqueues, which exactly one package holds at a time), so the loop
// parallelizes across packages with no cross-shard writes. Everything
// cross-package - arrivals, wakeups, task lifecycle, balancing, the skip-
// ahead quiescent kernels - runs sequentially in package order. The
// machine-wide runnable count is a per-shard counter summed on read, which
// is what lets runqueues keep their lock-free increment inside the parallel
// region and still feed the skip-ahead planner's quiescence test.

#ifndef SRC_SIM_SIMULATION_STATE_H_
#define SRC_SIM_SIMULATION_STATE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "src/base/annotations.h"
#include "src/core/initial_placement.h"
#include "src/fault/fault_plan.h"
#include "src/core/power_metrics.h"
#include "src/counters/counter_block.h"
#include "src/counters/energy_estimator.h"
#include "src/sched/balance_env.h"
#include "src/sim/event_queue.h"
#include "src/sim/machine_config.h"
#include "src/task/binary_registry.h"
#include "src/thermal/rc_model.h"
#include "src/thermal/throttle_controller.h"

namespace eas {

// Everything one physical package mutates during the engine's package phase
// loop. `runqueues[t]` etc. are indexed by the SMT thread slot; the flat
// per-logical tables in SimulationState map `cpu -> &shard(cpu % P).x[cpu / P]`
// so the hot accessors stay one load. The shard vector is reserved up front
// and shards never move, so those pointers (and the runnable-counter pointer
// each runqueue holds into its shard) stay valid for the state's lifetime.
struct PackageShard {
  PackageShard(const ThermalParams& params, const PStateTable& pstates,
               double throttle_hysteresis_watts, double halt_power)
      : package_throttle(throttle_hysteresis_watts),
        thermal(params),
        freq_domain(pstates),
        last_true_power(halt_power) {}

  std::vector<Runqueue> runqueues;            // per SMT sibling
  std::vector<CounterBlock> counters;         // per SMT sibling
  std::vector<CpuPowerState> power_states;    // per SMT sibling
  std::vector<ThrottleController> throttles;  // per SMT sibling (stats)
  ThrottleController package_throttle;        // the package halt decision
  RcThermalModel thermal;
  FrequencyDomain freq_domain;
  double last_true_power;
  // This shard's share of the machine-wide nr_running; the shard's
  // runqueues point here, so parallel package phases never contend on a
  // global counter.
  std::int64_t runnable = 0;
};

class SimulationState : public BalanceEnv {
 public:
  explicit SimulationState(const MachineConfig& config);
  ~SimulationState() override;

  // Runqueues point at their shard's runnable counter and tasks live in the
  // arena; the state is pinned in place for its lifetime.
  SimulationState(const SimulationState&) = delete;
  SimulationState& operator=(const SimulationState&) = delete;

  // --- BalanceEnv -----------------------------------------------------------
  const CpuTopology& topology() const override { return config_.topology; }
  const DomainHierarchy& domains() const override { return domains_; }
  EAS_SHARD_LOCAL Runqueue& runqueue(int cpu) override {
    return *runqueue_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL const Runqueue& runqueue(int cpu) const override {
    return *runqueue_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL double RunqueuePower(int cpu) const override;
  EAS_SHARD_LOCAL double ThermalPower(int cpu) const override;
  EAS_SHARD_LOCAL double MaxPower(int cpu) const override;
  EAS_CROSS_SHARD bool MigrateTask(Task* task, int from, int to) override;
  bool CpuOnline(int cpu) const override {
    return cpu_online_[static_cast<std::size_t>(cpu)] != 0;
  }
  std::int64_t migration_count() const override { return migration_count_; }
  // Balance metrics only change between balance passes when the tick
  // advances: every non-balance mutation (spawn, wake, execution, sampling,
  // lifecycle) happens before BalancePhase within a tick, and migrations
  // during the phase invalidate their two CPUs' aggregates explicitly. So
  // the tick counter is the version, and every balance pass within one tick
  // shares the aggregate cache.
  std::uint64_t metrics_version() const override { return static_cast<std::uint64_t>(now_); }

  // --- workload -------------------------------------------------------------

  // Creates a task running `program` and places it (energy-aware placement
  // if enabled, least-loaded otherwise).
  EAS_CROSS_SHARD Task* Spawn(const Program& program, int nice);

  // Placement for a (re)spawned task per the configured policy: energy-aware
  // placement seeds the profile from the binary registry; the baseline picks
  // the least loaded CPU with random tie-break and leaves the profile alone.
  EAS_CROSS_SHARD int PlaceTask(Task& task);

  // Ends the current accounting period of `task` and feeds the binary
  // registry on the task's first committed period.
  EAS_CROSS_SHARD void CommitPeriod(Task& task);

  // If `cpu` has no current task, switches in the next queued one.
  EAS_SHARD_LOCAL void SwitchInIfIdle(int cpu);

  // --- event queues (the tick hot path) -------------------------------------
  //
  // Sleeper wakeups and workload arrivals are min-heaps keyed (tick, order)
  // instead of per-tick scans, so a tick's cost scales with the events due,
  // not with every task ever spawned.

  // Puts `task` (already detached from its runqueue) to sleep for `duration`
  // ticks and schedules its wakeup. The wake queue is the only wake
  // mechanism: a task made kSleeping without going through here never wakes.
  EAS_CROSS_SHARD void StartSleep(Task& task, Tick duration);

  // Schedules `program` to be spawned with `nice` at the start of `tick`
  // (before that tick's wakeups). Insertion order breaks ties.
  EAS_CROSS_SHARD void ScheduleArrival(const Program& program, int nice, Tick tick);

  // Drops arrivals that have not fired yet (end of an experiment run: a
  // leftover arrival must not leak into a later run on the same machine).
  EAS_CROSS_SHARD void ClearPendingArrivals();

  struct PendingArrival {
    const Program* program = nullptr;
    int nice = 0;
  };
  EAS_CROSS_SHARD TickEventQueue<Task*>& wake_queue() { return wake_queue_; }
  EAS_CROSS_SHARD const TickEventQueue<Task*>& wake_queue() const { return wake_queue_; }
  EAS_CROSS_SHARD TickEventQueue<PendingArrival>& arrival_queue() { return arrival_queue_; }
  EAS_CROSS_SHARD const TickEventQueue<PendingArrival>& arrival_queue() const {
    return arrival_queue_;
  }

  // Machine-wide nr_running: the sum of the per-shard counters the
  // runqueues maintain incrementally. The skip-ahead planner's quiescence
  // test: zero means no task is runnable or running anywhere, so ticks are
  // pure idle physics until the next wake or arrival.
  EAS_CROSS_SHARD std::int64_t total_runnable() const {
    std::int64_t total = 0;
    for (const PackageShard& shard : shards_) {
      total += shard.runnable;
    }
    return total;
  }

  // --- fault injection (src/fault/fault_plan.h, applied by FaultPhase) ------
  //
  // The constructor parses config.fault_spec into the fault queue (throwing
  // std::invalid_argument on a malformed spec); the FaultPhase pops due
  // events at the start of each tick and mutates the masks below. All of
  // this is engine-sequential state: the phase runs before any parallel
  // fan-out, and the package phases only *read* the masks for their own
  // package.

  EAS_CROSS_SHARD TickEventQueue<FaultEvent>& fault_queue() { return fault_queue_; }
  EAS_CROSS_SHARD const TickEventQueue<FaultEvent>& fault_queue() const { return fault_queue_; }

  // Flips a CPU's online bit, maintaining the per-package online-sibling
  // and machine-wide offline counts. No-op if the bit already matches.
  EAS_CROSS_SHARD void SetCpuOnline(int cpu, bool online);

  // Online SMT siblings of a package (== smt_per_physical() when healthy).
  EAS_SHARD_LOCAL std::int64_t online_siblings(std::size_t physical) const {
    return online_siblings_[physical];
  }
  std::int64_t offline_cpu_count() const { return offline_cpus_; }
  // Ledger: sum over ticks of the offline-CPU count at each tick, appended
  // by FaultPhase after it applies the tick's events.
  std::int64_t offline_cpu_ticks() const { return offline_cpu_ticks_; }
  EAS_CROSS_SHARD void AccountOfflineTicks() { offline_cpu_ticks_ += offline_cpus_; }
  std::int64_t faults_fired() const { return faults_fired_; }
  EAS_CROSS_SHARD void NoteFaultFired() { ++faults_fired_; }

  // Thermal emergency: while active the governor is forced to the deepest
  // P-state (ungoverned machines halt through the gate's backstop).
  EAS_SHARD_LOCAL bool EmergencyActive(std::size_t physical) const {
    return now_ < emergency_until_[physical];
  }
  EAS_CROSS_SHARD void RaiseEmergency(std::size_t physical, Tick until) {
    emergency_until_[physical] = std::max(emergency_until_[physical], until);
  }

  // P-state clamp: while active the package's P-state index may not drop
  // below the floor (deeper = higher index = slower is always allowed).
  EAS_SHARD_LOCAL bool ClampActive(std::size_t physical) const {
    return now_ < clamp_until_[physical];
  }
  EAS_SHARD_LOCAL std::size_t clamp_floor(std::size_t physical) const {
    return clamp_floor_[physical];
  }
  EAS_CROSS_SHARD void SetClamp(std::size_t physical, std::size_t floor, Tick until) {
    clamp_floor_[physical] = floor;
    clamp_until_[physical] = std::max(clamp_until_[physical], until);
  }

  // True when no fault effect is live: every CPU online, no emergency or
  // clamp window open, and (ungoverned) every domain back at P0. The
  // skip-ahead planner requires this before entering a quiescent span, so
  // the reduced kernels never have to model offline physics.
  EAS_CROSS_SHARD bool FaultQuiescent() const;

  // Least-loaded online CPU other than `excluding` (lowest id breaks ties -
  // deterministic, no RNG draw: fault reactions must not perturb the shared
  // stream). Returns `excluding` itself only if no other CPU is online,
  // which the FaultPhase's last-CPU guard prevents.
  EAS_CROSS_SHARD int PickOnlineFallback(int excluding) const;

  // --- derived quantities ---------------------------------------------------
  std::size_t num_cpus() const { return config_.topology.num_logical(); }
  std::size_t num_physical() const { return config_.topology.num_physical(); }
  double IdlePowerPerLogical() const;
  EAS_SHARD_LOCAL double MaxPowerPhysical(std::size_t physical) const;

  // Sum of the sibling thermal powers of a package - the quantity both the
  // hlt ThrottleGate and the frequency governors compare against the
  // package budget (one definition, so the two mechanisms cannot drift).
  EAS_SHARD_LOCAL double PackageThermalPower(std::size_t physical) const;
  EAS_SHARD_LOCAL double Temperature(std::size_t physical) const {
    return shards_[physical].thermal.temperature();
  }
  EAS_SHARD_LOCAL double TruePower(std::size_t physical) const {
    return shards_[physical].last_true_power;
  }
  EAS_CROSS_SHARD double TotalWorkDone() const;
  EAS_CROSS_SHARD std::int64_t TotalCompletions() const;
  EAS_CROSS_SHARD double TotalTaskEnergy() const;

  // Logical CPU a task occupies, or kInvalidCpu if sleeping/finished.
  static int TaskCpu(const Task& task);

  // --- raw state (the phase components work on these) -----------------------
  const MachineConfig& config() const { return config_; }
  // The engine's sequential sections own the clock and the shared RNG
  // stream: one draw from a parallel phase would make the stream's order
  // depend on worker interleaving.
  EAS_CROSS_SHARD Rng& rng() { return rng_; }
  Tick now() const { return now_; }
  EAS_CROSS_SHARD void AdvanceTick() { ++now_; }
  // Clock jump for the skip-ahead fast path, after the span's state updates
  // have been integrated in bulk.
  EAS_CROSS_SHARD void AdvanceTicks(Tick n) { now_ += n; }

  EAS_SHARD_LOCAL CounterBlock& counters(int cpu) {
    return *counter_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL CpuPowerState& power_state(int cpu) {
    return *power_state_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL ThrottleController& throttle(int cpu) {
    return *throttle_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL const ThrottleController& throttle(int cpu) const {
    return *throttle_by_cpu_[static_cast<std::size_t>(cpu)];
  }
  EAS_SHARD_LOCAL ThrottleController& package_throttle(std::size_t physical) {
    return shards_[physical].package_throttle;
  }
  EAS_SHARD_LOCAL const ThrottleController& package_throttle(std::size_t physical) const {
    return shards_[physical].package_throttle;
  }
  EAS_SHARD_LOCAL RcThermalModel& thermal(std::size_t physical) {
    return shards_[physical].thermal;
  }
  EAS_SHARD_LOCAL FrequencyDomain& freq_domain(std::size_t physical) {
    return shards_[physical].freq_domain;
  }
  EAS_SHARD_LOCAL const FrequencyDomain& freq_domain(std::size_t physical) const {
    return shards_[physical].freq_domain;
  }
  EAS_SHARD_LOCAL void set_true_power(std::size_t physical, double watts) {
    shards_[physical].last_true_power = watts;
  }

  EAS_SHARD_LOCAL PackageShard& shard(std::size_t physical) { return shards_[physical]; }
  EAS_SHARD_LOCAL const PackageShard& shard(std::size_t physical) const {
    return shards_[physical];
  }

  const std::vector<Task*>& tasks() const { return tasks_; }
  Task* task(std::size_t i) { return tasks_[i]; }

  EAS_CROSS_SHARD const BinaryRegistry& binary_registry() const { return registry_; }
  EAS_CROSS_SHARD BinaryRegistry& binary_registry() { return registry_; }
  const EnergyEstimator& estimator() const { return *estimator_; }

 private:
  // Baseline exec placement: least loaded CPU, preferring an idle package,
  // remaining ties broken randomly.
  int PlaceLeastLoadedRandomTie();

  MachineConfig config_;
  DomainHierarchy domains_;
  Rng rng_;

  // One shard per physical package (reserved, never reallocated), plus flat
  // per-logical pointer tables so the hot accessors stay O(1) loads.
  std::vector<PackageShard> shards_;
  std::vector<Runqueue*> runqueue_by_cpu_;            // per logical
  std::vector<CounterBlock*> counter_by_cpu_;         // per logical
  std::vector<CpuPowerState*> power_state_by_cpu_;    // per logical
  std::vector<ThrottleController*> throttle_by_cpu_;  // per logical
  std::vector<double> max_power_logical_;             // per logical (const after ctor)

  std::unique_ptr<EnergyEstimator> estimator_;
  BinaryRegistry registry_;
  InitialPlacement placement_;

  // Task storage: objects are placement-new'd into a monotonic arena (one
  // bump allocation per spawn, freed wholesale when the state dies) and the
  // per-tick hot fields live in the struct-of-arrays columns. The columns
  // are shared across shards, but a row is only ever touched by the package
  // whose runqueue currently holds the task, so parallel package phases
  // write disjoint rows. The destructor runs each task's destructor
  // explicitly; the arena then releases the memory in one shot.
  std::pmr::monotonic_buffer_resource task_arena_;
  TaskHotColumns hot_;
  std::vector<Task*> tasks_;
  TaskId next_task_id_ = 1;
  Tick now_ = 0;
  std::int64_t migration_count_ = 0;

  // (wake_tick, task_id)-keyed sleeper wakeups; task-id tie-break reproduces
  // the task-table scan order this queue replaced.
  TickEventQueue<Task*> wake_queue_;
  // (tick, insertion seq)-keyed workload arrivals.
  TickEventQueue<PendingArrival> arrival_queue_;
  std::int64_t next_arrival_seq_ = 0;

  // Fault-layer state (allocated unconditionally - a handful of words - so
  // CpuOnline() stays branch-free on the fault-free hot path; the queue and
  // counters only ever change when config.faulted()).
  TickEventQueue<FaultEvent> fault_queue_;        // (tick, plan position)
  std::vector<std::uint8_t> cpu_online_;          // per logical, 1 = online
  std::vector<std::int64_t> online_siblings_;     // per package
  std::vector<Tick> emergency_until_;             // per package, exclusive
  std::vector<Tick> clamp_until_;                 // per package, exclusive
  std::vector<std::size_t> clamp_floor_;          // per package
  std::int64_t offline_cpus_ = 0;
  std::int64_t offline_cpu_ticks_ = 0;
  std::int64_t faults_fired_ = 0;
};

}  // namespace eas

#endif  // SRC_SIM_SIMULATION_STATE_H_
