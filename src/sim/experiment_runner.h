// Parallel experiment sweeps.
//
// A sweep is a list of ExperimentSpecs - (config, options, workload)
// combinations, e.g. every balancing policy x several seeds. The runner fans
// the specs across a thread pool; every spec builds its own Machine from its
// own seeded config, so runs share no mutable state and the aggregate is
// deterministic: results arrive indexed by spec, bit-identical for any
// thread count, including 1.

#ifndef SRC_SIM_EXPERIMENT_RUNNER_H_
#define SRC_SIM_EXPERIMENT_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/experiment.h"

namespace eas {

// One self-contained run of a sweep. `workload` converts implicitly from the
// legacy std::vector<const Program*> spawn lists and can carry timed
// arrivals plus ownership of generated programs (src/workloads/workload.h).
struct ExperimentSpec {
  std::string name;  // label for reports ("energy_aware/seed42")
  MachineConfig config;
  Experiment::Options options;
  Workload workload;
};

class ExperimentRunner {
 public:
  // `num_threads` = 0 picks the hardware concurrency.
  explicit ExperimentRunner(std::size_t num_threads = 0);

  std::size_t num_threads() const { return num_threads_; }

  // Runs every spec and returns the results in spec order. Each run is
  // independent and seeded by its own config, so the output is identical
  // for any thread count. If specs fail (e.g. an unknown balancer_name
  // throws from the Machine constructor), the remaining specs still run and
  // the lowest-indexed spec's exception is rethrown - again independent of
  // the thread count.
  std::vector<RunResult> RunAll(const std::vector<ExperimentSpec>& specs) const;

  // Streaming form: `consume(i, std::move(result))` is invoked once per spec
  // as its run completes, in completion order (NOT spec order - callers that
  // need spec order reorder themselves, e.g. RunSession in src/api). Calls
  // are serialized by an internal mutex, so `consume` needs no locking of
  // its own. Nothing is retained by the runner, so a sweep too large to hold
  // every RunResult in memory can stream through here. Failure semantics
  // match RunAll: a failed spec produces no callback, the remaining specs
  // still run, and the lowest-indexed spec's exception is rethrown after the
  // join.
  void RunEach(const std::vector<ExperimentSpec>& specs,
               const std::function<void(std::size_t, RunResult&&)>& consume) const;

  // Expands `base` into one spec per (name, config) variant produced by
  // repeating it with the seeds [base.config.seed, base.config.seed + n).
  static std::vector<ExperimentSpec> SeedSweep(const ExperimentSpec& base, std::size_t n);

 private:
  std::size_t num_threads_;
};

}  // namespace eas

#endif  // SRC_SIM_EXPERIMENT_RUNNER_H_
