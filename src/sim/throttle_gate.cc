#include "src/sim/throttle_gate.h"

namespace eas {

bool ThrottleGate::GatePackage(SimulationState& state, std::size_t physical) const {
  // A thermal-emergency window on an *ungoverned* machine halts the package
  // outright - the hlt backstop: with no governor there is no P-state to
  // step down to. Governed machines ride the emergency at the deepest
  // P-state instead (FrequencyPhase), matching how the paper positions the
  // two capping mechanisms.
  const bool emergency = state.config().faulted() && !state.config().governed() &&
                         state.EmergencyActive(physical);
  if (!state.config().throttling_enabled) {
    if (!emergency) {
      return false;
    }
    state.package_throttle(physical).AccountTick(true);
    return true;
  }
  const bool throttled = state.package_throttle(physical).ShouldThrottle(
                             state.PackageThermalPower(physical),
                             state.MaxPowerPhysical(physical)) ||
                         emergency;
  state.package_throttle(physical).AccountTick(throttled);
  return throttled;
}

void ThrottleGate::AccountCpuTicks(SimulationState& state, std::size_t physical,
                                   bool throttled) const {
  // Emergency-forced halts (throttled despite throttling_enabled == false)
  // still record Table 3 statistics; the fault-free early-out is unchanged.
  if (!state.config().throttling_enabled && !throttled) {
    return;
  }
  const std::size_t siblings = state.config().topology.smt_per_physical();
  for (std::size_t t = 0; t < siblings; ++t) {
    const int cpu = state.config().topology.LogicalId(physical, t);
    const bool wants_to_run = state.runqueue(cpu).current() != nullptr;
    state.throttle(cpu).AccountTick(throttled && wants_to_run, wants_to_run);
  }
}

}  // namespace eas
