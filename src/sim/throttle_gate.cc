#include "src/sim/throttle_gate.h"

namespace eas {

bool ThrottleGate::GatePackage(SimulationState& state, std::size_t physical) const {
  if (!state.config().throttling_enabled) {
    return false;
  }
  const bool throttled = state.package_throttle(physical).ShouldThrottle(
      state.PackageThermalPower(physical), state.MaxPowerPhysical(physical));
  state.package_throttle(physical).AccountTick(throttled);
  return throttled;
}

void ThrottleGate::AccountCpuTicks(SimulationState& state, std::size_t physical,
                                   bool throttled) const {
  if (!state.config().throttling_enabled) {
    return;
  }
  const std::size_t siblings = state.config().topology.smt_per_physical();
  for (std::size_t t = 0; t < siblings; ++t) {
    const int cpu = state.config().topology.LogicalId(physical, t);
    const bool wants_to_run = state.runqueue(cpu).current() != nullptr;
    state.throttle(cpu).AccountTick(throttled && wants_to_run, wants_to_run);
  }
}

}  // namespace eas
