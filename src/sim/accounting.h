// Accounting observer: records the traces the paper's evaluation reports.
//
// Attached to the SimulationEngine as a TickObserver, it samples thermal
// power per logical CPU, true temperature per package, and (optionally) the
// CPU residency of selected tasks (Figure 9) on a fixed sampling grid. The
// Experiment harness moves the collected series into its RunResult.

#ifndef SRC_SIM_ACCOUNTING_H_
#define SRC_SIM_ACCOUNTING_H_

#include <vector>

#include "src/base/series.h"
#include "src/sim/simulation_engine.h"

namespace eas {

class Accounting : public TickObserver {
 public:
  struct Options {
    Tick sample_interval_ticks = 500;
  };

  // Creates one thermal-power series per logical CPU ("cpuN") and one
  // temperature series per package ("physN") of `state`. The sampling grid
  // is anchored at `state`'s current tick, so series ticks are relative to
  // the moment the accounting was created (run-start), not absolute machine
  // time - a second Run on the same machine starts its traces at 0 again.
  Accounting(const SimulationState& state, const Options& options);

  // Adds a CPU-residency trace for `task` (named "<program>#<id>"). Call
  // before the first sampled tick.
  void TraceTask(const Task* task);

  void OnTick(const SimulationState& state) override;

  // The next now value on the sampling grid: OnTick samples when the ticks
  // elapsed since creation hit a multiple of the interval, and is a no-op
  // everywhere else, so the engine's skip-ahead can jump between grid
  // points.
  Tick NextObservableTick(Tick now) const override {
    const Tick interval = options_.sample_interval_ticks;
    const Tick since = now - start_tick_;
    const Tick elapsed = since < 0 ? 0 : since;
    const Tick rounded = ((elapsed + interval - 1) / interval) * interval;
    return start_tick_ + rounded + 1;
  }

  SeriesSet& thermal_power() { return thermal_power_; }
  SeriesSet& temperature() { return temperature_; }
  SeriesSet& task_cpu() { return task_cpu_; }
  SeriesSet& frequency() { return frequency_; }

 private:
  Options options_;
  Tick start_tick_;
  SeriesSet thermal_power_;
  SeriesSet temperature_;
  SeriesSet task_cpu_;
  // Per-package DVFS frequency multiplier, sampled on the same grid. Only
  // created (and sampled) when the state's machine runs a governor other
  // than "none" - an ungoverned machine's traces stay exactly as before.
  SeriesSet frequency_;
  bool record_frequency_ = false;
  std::vector<const Task*> traced_;
};

}  // namespace eas

#endif  // SRC_SIM_ACCOUNTING_H_
