// The simulated multiprocessor machine.
//
// Ties every substrate together and stands in for the paper's IBM xSeries
// 445 plus modified Linux kernel: per logical CPU runqueues, counters and
// power metrics; per physical package RC thermal state and true power; the
// scheduler tick (timeslices, blocking, wakeups); the balancing policies;
// throttling; and all accounting the experiments report (migrations,
// throttle fractions, throughput, traces).
//
// The machine implements BalanceEnv, so the policy code in src/sched and
// src/core runs against it unchanged.

#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>
#include <vector>

#include "src/core/energy_balancer.h"
#include "src/core/hot_task_migrator.h"
#include "src/core/naive_balancers.h"
#include "src/core/initial_placement.h"
#include "src/core/power_metrics.h"
#include "src/counters/counter_block.h"
#include "src/counters/energy_estimator.h"
#include "src/sched/balance_env.h"
#include "src/sched/load_balancer.h"
#include "src/sim/machine_config.h"
#include "src/task/binary_registry.h"
#include "src/thermal/rc_model.h"
#include "src/thermal/throttle_controller.h"

namespace eas {

class Machine : public BalanceEnv {
 public:
  explicit Machine(const MachineConfig& config);

  // --- workload management --------------------------------------------------

  // Creates a task running `program` and places it (energy-aware placement
  // if enabled, least-loaded otherwise). Returns the task. `nice` scales the
  // task's timeslices (Task::TimesliceForNice).
  Task* Spawn(const Program& program, int nice = 0);

  // Advances the machine by one tick.
  void Step();

  // Advances by `n` ticks.
  void Run(Tick n);

  Tick now() const { return now_; }

  // --- BalanceEnv -------------------------------------------------------------
  const CpuTopology& topology() const override { return config_.topology; }
  const DomainHierarchy& domains() const override { return domains_; }
  Runqueue& runqueue(int cpu) override { return *runqueues_[static_cast<std::size_t>(cpu)]; }
  const Runqueue& runqueue(int cpu) const override {
    return *runqueues_[static_cast<std::size_t>(cpu)];
  }
  double RunqueuePower(int cpu) const override;
  double ThermalPower(int cpu) const override;
  double MaxPower(int cpu) const override;
  bool MigrateTask(Task* task, int from, int to) override;
  std::int64_t migration_count() const override { return migration_count_; }

  // --- observation -------------------------------------------------------------
  std::size_t num_cpus() const { return config_.topology.num_logical(); }
  std::size_t num_physical() const { return config_.topology.num_physical(); }

  // True die temperature of a physical package (deg C).
  double Temperature(std::size_t physical) const;

  // True electrical power of a physical package during the last tick (W).
  double TruePower(std::size_t physical) const;

  // Throttle statistics of a logical CPU. A tick counts as throttled for a
  // logical CPU if its package was halted while the CPU had a task to run.
  const ThrottleController& throttle(int cpu) const {
    return throttles_[static_cast<std::size_t>(cpu)];
  }

  // Whether a physical package is currently halted by thermal control. Only
  // physical processors overheat (Section 4.7), so the decision compares the
  // sum of the sibling thermal powers against the package's maximum power.
  bool PackageThrottled(std::size_t physical) const {
    return package_throttles_[physical].throttled();
  }

  // Idle (halted) power attributed to one logical CPU (W).
  double IdlePowerPerLogical() const;

  // Maximum power of a physical package (W).
  double MaxPowerPhysical(std::size_t physical) const;

  // Sum of work ticks executed by all tasks (the throughput numerator).
  double TotalWorkDone() const;

  // Sum of program completions over all tasks.
  std::int64_t TotalCompletions() const;

  // Estimated total energy attributed to tasks so far (J).
  double TotalTaskEnergy() const;

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }
  Task* task(std::size_t i) { return tasks_[i].get(); }

  const BinaryRegistry& binary_registry() const { return registry_; }
  const EnergyEstimator& estimator() const { return *estimator_; }
  const MachineConfig& config() const { return config_; }

  // Logical CPU a task occupies, or kInvalidCpu if sleeping/finished.
  static int TaskCpu(const Task& task);

 private:
  MachineConfig config_;
  DomainHierarchy domains_;
  Rng rng_;

  std::vector<std::unique_ptr<Runqueue>> runqueues_;     // per logical
  std::vector<CounterBlock> counters_;                   // per logical
  std::vector<CpuPowerState> power_states_;              // per logical
  std::vector<ThrottleController> throttles_;            // per logical (stats)
  std::vector<ThrottleController> package_throttles_;    // per physical (decision)
  std::vector<RcThermalModel> thermal_;                  // per physical
  std::vector<double> last_true_power_;                  // per physical
  std::vector<double> max_power_logical_;                // per logical

  std::unique_ptr<EnergyEstimator> estimator_;
  BinaryRegistry registry_;

  LoadBalancer load_balancer_;
  EnergyLoadBalancer energy_balancer_;
  PowerOnlyBalancer power_only_balancer_;
  TemperatureOnlyBalancer temperature_only_balancer_;
  HotTaskMigrator hot_migrator_;
  InitialPlacement placement_;

  std::vector<std::unique_ptr<Task>> tasks_;
  TaskId next_task_id_ = 1;
  Tick now_ = 0;
  std::int64_t migration_count_ = 0;

  // Baseline exec placement: least loaded CPU, ties broken randomly.
  int PlaceLeastLoadedRandomTie();

  void WakeSleepers();
  void SwitchInIfIdle(int cpu);
  void ExecuteCpus();
  void RunBalancers();
  // Ends the current accounting period of `task` and feeds the binary
  // registry on the task's first committed period.
  void CommitPeriod(Task& task);
  // Handles end-of-tick lifecycle for the current task of `cpu`.
  void HandleLifecycle(int cpu);
};

}  // namespace eas

#endif  // SRC_SIM_MACHINE_H_
