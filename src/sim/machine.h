// The simulated multiprocessor machine - a facade over the layered engine.
//
// Stands in for the paper's IBM xSeries 445 plus modified Linux kernel. The
// state (runqueues, counters, power metrics, thermal models, tasks) lives in
// SimulationState; the per-tick behaviour lives in the SimulationEngine's
// phase components (sched_tick, throttle_gate, counter_sampler,
// thermal_stepper) with balancing policies resolved by name through the
// BalancePolicyRegistry. Machine wires the two together and keeps the
// public surface the experiments, tests and tools program against.
//
// The machine implements BalanceEnv (by forwarding to its state), so the
// policy code in src/sched and src/core runs against it unchanged.

#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>
#include <vector>

#include "src/sched/balance_env.h"
#include "src/sim/machine_config.h"
#include "src/sim/simulation_engine.h"
#include "src/sim/simulation_state.h"

namespace eas {

class Machine : public BalanceEnv {
 public:
  // Throws std::invalid_argument if the configured balancing policy name is
  // not registered.
  explicit Machine(const MachineConfig& config);

  // --- workload management --------------------------------------------------

  // Creates a task running `program` and places it (energy-aware placement
  // if enabled, least-loaded otherwise). Returns the task. `nice` scales the
  // task's timeslices (Task::TimesliceForNice).
  Task* Spawn(const Program& program, int nice = 0) { return state_.Spawn(program, nice); }

  // Advances the machine by one tick.
  void Step() { engine_.Tick(state_); }

  // Advances by `n` ticks.
  void Run(Tick n);

  Tick now() const { return state_.now(); }

  // --- layered internals ----------------------------------------------------
  SimulationState& state() { return state_; }
  const SimulationState& state() const { return state_; }
  SimulationEngine& engine() { return engine_; }

  // --- BalanceEnv -----------------------------------------------------------
  const CpuTopology& topology() const override { return state_.topology(); }
  const DomainHierarchy& domains() const override { return state_.domains(); }
  Runqueue& runqueue(int cpu) override { return state_.runqueue(cpu); }
  const Runqueue& runqueue(int cpu) const override { return state_.runqueue(cpu); }
  double RunqueuePower(int cpu) const override { return state_.RunqueuePower(cpu); }
  double ThermalPower(int cpu) const override { return state_.ThermalPower(cpu); }
  double MaxPower(int cpu) const override { return state_.MaxPower(cpu); }
  bool MigrateTask(Task* task, int from, int to) override {
    return state_.MigrateTask(task, from, to);
  }
  std::int64_t migration_count() const override { return state_.migration_count(); }

  // --- observation ----------------------------------------------------------
  std::size_t num_cpus() const { return state_.num_cpus(); }
  std::size_t num_physical() const { return state_.num_physical(); }

  // True die temperature of a physical package (deg C).
  double Temperature(std::size_t physical) const { return state_.Temperature(physical); }

  // True electrical power of a physical package during the last tick (W).
  double TruePower(std::size_t physical) const { return state_.TruePower(physical); }

  // Throttle statistics of a logical CPU. A tick counts as throttled for a
  // logical CPU if its package was halted while the CPU had a task to run.
  const ThrottleController& throttle(int cpu) const { return state_.throttle(cpu); }

  // Whether a physical package is currently halted by thermal control. Only
  // physical processors overheat (Section 4.7), so the decision compares the
  // sum of the sibling thermal powers against the package's maximum power.
  bool PackageThrottled(std::size_t physical) const {
    return state_.package_throttle(physical).throttled();
  }

  // Idle (halted) power attributed to one logical CPU (W).
  double IdlePowerPerLogical() const { return state_.IdlePowerPerLogical(); }

  // Maximum power of a physical package (W).
  double MaxPowerPhysical(std::size_t physical) const {
    return state_.MaxPowerPhysical(physical);
  }

  // Sum of work ticks executed by all tasks (the throughput numerator).
  double TotalWorkDone() const { return state_.TotalWorkDone(); }

  // Sum of program completions over all tasks.
  std::int64_t TotalCompletions() const { return state_.TotalCompletions(); }

  // Estimated total energy attributed to tasks so far (J).
  double TotalTaskEnergy() const { return state_.TotalTaskEnergy(); }

  const std::vector<Task*>& tasks() const { return state_.tasks(); }
  Task* task(std::size_t i) { return state_.task(i); }

  const BinaryRegistry& binary_registry() const { return state_.binary_registry(); }
  const EnergyEstimator& estimator() const { return state_.estimator(); }
  const MachineConfig& config() const { return state_.config(); }

  // Logical CPU a task occupies, or kInvalidCpu if sleeping/finished.
  static int TaskCpu(const Task& task) { return SimulationState::TaskCpu(task); }

 private:
  SimulationState state_;
  SimulationEngine engine_;
};

}  // namespace eas

#endif  // SRC_SIM_MACHINE_H_
