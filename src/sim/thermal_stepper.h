// Thermal-stepping phase: the package's true electrical power this tick and
// one step of the RC thermal model (paper Section 5.2).

#ifndef SRC_SIM_THERMAL_STEPPER_H_
#define SRC_SIM_THERMAL_STEPPER_H_

#include <cstddef>

#include "src/base/annotations.h"
#include "src/sim/simulation_state.h"

namespace eas {

class ThermalStepper {
 public:
  // Computes the true electrical power of `physical` from the number of
  // active siblings and the tick's true dynamic energy, records it, and
  // advances the package's RC model by one tick.
  EAS_SHARD_LOCAL void StepPackage(SimulationState& state, std::size_t physical,
                                   std::size_t active_count, double true_dynamic) const;
};

}  // namespace eas

#endif  // SRC_SIM_THERMAL_STEPPER_H_
