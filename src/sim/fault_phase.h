// FaultPhase: applies due FaultPlan events at the start of a tick.
//
// The phase pops everything due from the state's fault queue (min-heap
// keyed (tick, plan position), the same machinery wakes and arrivals use)
// and mutates the state before any other phase sees the tick, so a fault's
// effects - drained runqueue, raised temperature, clamped P-state - are
// visible to the gate, governor and scheduler of the very tick it fires
// on, identically in the interleaved and sharded pipelines (both run this
// phase engine-sequentially before the package fan-out). All reactions are
// deterministic: re-placement picks the least-loaded online CPU with a
// lowest-id tie-break and never draws from the shared RNG stream, so a
// fault plan perturbs the simulation only through its declared effects.
//
// Reaction summary (the full argument lives in ARCHITECTURE.md):
//   offline  drain the CPU's runqueue through MigrateTask (period commit +
//            warmup penalty, the normal migration path); the last online
//            CPU refuses to go offline
//   online   restore the mask; balancing repopulates the CPU on its next
//            pass
//   spike    die-temperature jump + a timed emergency window - governed
//            machines are forced to the deepest P-state by FrequencyPhase,
//            ungoverned ones halt through ThrottleGate's backstop
//   clamp    timed P-state floor - enforced by FrequencyPhase when
//            governed, applied (and restored on expiry) here when not

#ifndef SRC_SIM_FAULT_PHASE_H_
#define SRC_SIM_FAULT_PHASE_H_

#include "src/base/annotations.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulation_state.h"

namespace eas {

class FaultPhase {
 public:
  // Applies every event due at state.now(), restores expired ungoverned
  // clamps, and appends this tick's offline-CPU count to the ledger. Only
  // called when state.config().faulted().
  EAS_CROSS_SHARD void Run(SimulationState& state) const;

 private:
  void ApplyOffline(SimulationState& state, const FaultEvent& event) const;
  void ApplyOnline(SimulationState& state, const FaultEvent& event) const;
  void ApplySpike(SimulationState& state, const FaultEvent& event) const;
  void ApplyClamp(SimulationState& state, const FaultEvent& event) const;
};

}  // namespace eas

#endif  // SRC_SIM_FAULT_PHASE_H_
