#include "src/sim/counter_sampler.h"

namespace eas {

double CounterSampler::Sample(SimulationState& state, std::size_t physical,
                              const std::vector<int>& active,
                              const std::vector<EventVector>& events) {
  const double static_share = state.estimator().static_power_per_logical();
  // DVFS: the P-state's per-event energy factor (V^2). The event counts
  // already shrank with the frequency multiplier during execution; this is
  // the voltage part of the f*V^2 dynamic-power law. Exactly 1.0 (and
  // bit-neutral) for an ungoverned package at P0.
  const double energy_scale = state.freq_domain(physical).energy_scale();
  double true_dynamic = 0.0;

  if (active_mask_.size() < state.num_cpus()) {
    active_mask_.resize(state.num_cpus(), 0);
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    const int cpu = active[i];
    active_mask_[static_cast<std::size_t>(cpu)] = 1;
    state.counters(cpu).Accumulate(events[i]);
    true_dynamic += state.config().model.DynamicEnergy(events[i], energy_scale);

    // Estimated per-tick energy: what the kernel's estimator attributes.
    const double estimated =
        state.estimator().EstimateDynamicEnergy(events[i], energy_scale) +
        static_share * kTickSeconds;
    Task* task = state.runqueue(cpu).current();
    task->AccumulateEnergy(estimated);
    state.power_state(cpu).AccountEnergy(estimated, kTickSeconds);
  }

  // Inactive (idle or throttled) siblings burn their halt-power share; an
  // offlined sibling is powered down and credits zero watts (its thermal
  // average decays toward zero across the offline span).
  const double idle_share = state.IdlePowerPerLogical();
  const std::size_t siblings = state.config().topology.smt_per_physical();
  for (std::size_t t = 0; t < siblings; ++t) {
    const int cpu = state.config().topology.LogicalId(physical, t);
    if (active_mask_[static_cast<std::size_t>(cpu)] == 0) {
      const double share = state.CpuOnline(cpu) ? idle_share : 0.0;
      state.power_state(cpu).AccountEnergy(share * kTickSeconds, kTickSeconds);
    }
  }
  for (int cpu : active) {
    active_mask_[static_cast<std::size_t>(cpu)] = 0;
  }
  return true_dynamic;
}

}  // namespace eas
