#include "src/sim/fault_phase.h"

#include <algorithm>
#include <cstddef>

namespace eas {

void FaultPhase::Run(SimulationState& state) const {
  TickEventQueue<FaultEvent>& queue = state.fault_queue();
  while (queue.PeekReady(state.now()) != nullptr) {
    const FaultEvent event = queue.Pop().payload;
    switch (event.kind) {
      case FaultKind::kCpuOffline:
        ApplyOffline(state, event);
        break;
      case FaultKind::kCpuOnline:
        ApplyOnline(state, event);
        break;
      case FaultKind::kThermalSpike:
        ApplySpike(state, event);
        break;
      case FaultKind::kPStateClamp:
        ApplyClamp(state, event);
        break;
    }
  }

  // Ungoverned machines have no FrequencyPhase to walk an expired clamp
  // back to full speed, and nothing else ever moves their domains off P0 -
  // so an off-P0 domain with no open clamp window is an expired clamp.
  if (!state.config().governed()) {
    for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
      if (!state.ClampActive(phys) && state.freq_domain(phys).current() != 0) {
        state.freq_domain(phys).SetPState(0);
      }
    }
  }

  state.AccountOfflineTicks();
}

void FaultPhase::ApplyOffline(SimulationState& state, const FaultEvent& event) const {
  if (!state.CpuOnline(event.cpu)) {
    return;  // already offline (churn overlap); idempotent
  }
  // The last online CPU refuses to go offline - a machine with zero
  // capacity has no defined semantics (real hotplug refuses the same way).
  if (state.offline_cpu_count() + 1 >= static_cast<std::int64_t>(state.num_cpus())) {
    return;
  }
  state.SetCpuOnline(event.cpu, false);
  state.NoteFaultFired();

  // Drain: every task on the dead CPU re-places through the normal
  // migration path (accounting-period commit, warmup penalty, migration
  // count), onto the least-loaded online CPU - recomputed per task so a
  // long queue spreads instead of dogpiling one victim.
  Runqueue& rq = state.runqueue(event.cpu);
  while (rq.current() != nullptr || rq.nr_queued() > 0) {
    Task* task = rq.current() != nullptr ? rq.current() : rq.queued().front();
    if (!state.MigrateTask(task, event.cpu, state.PickOnlineFallback(event.cpu))) {
      break;  // unreachable while >= 1 CPU is online; guards a wedged loop
    }
  }
}

void FaultPhase::ApplyOnline(SimulationState& state, const FaultEvent& event) const {
  if (state.CpuOnline(event.cpu)) {
    return;  // already online; idempotent
  }
  state.SetCpuOnline(event.cpu, true);
  state.NoteFaultFired();
  // No eager re-fill: the balance policy repopulates the restored CPU on
  // its next pass, exactly as it absorbs any other imbalance.
}

void FaultPhase::ApplySpike(SimulationState& state, const FaultEvent& event) const {
  RcThermalModel& thermal = state.thermal(event.package);
  thermal.SetTemperature(thermal.temperature() + event.delta_c);
  state.RaiseEmergency(event.package, state.now() + event.duration);
  state.NoteFaultFired();
}

void FaultPhase::ApplyClamp(SimulationState& state, const FaultEvent& event) const {
  FrequencyDomain& domain = state.freq_domain(event.package);
  const std::size_t floor = std::min(event.floor, domain.table().deepest());
  state.SetClamp(event.package, floor, state.now() + event.duration);
  // Governed domains are held at/below the floor by FrequencyPhase each
  // tick; ungoverned ones have no phase, so the clamp applies here and
  // Run() restores P0 when the window closes.
  if (!state.config().governed() && domain.current() < floor) {
    domain.SetPState(floor);
  }
  state.NoteFaultFired();
}

}  // namespace eas
