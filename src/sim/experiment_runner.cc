#include "src/sim/experiment_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace eas {

ExperimentRunner::ExperimentRunner(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    num_threads_ = hardware > 0 ? hardware : 1;
  }
}

std::vector<RunResult> ExperimentRunner::RunAll(const std::vector<ExperimentSpec>& specs) const {
  // The vector form is the streaming form with a collector: each worker's
  // result lands in its own spec's slot, so the aggregate keeps spec order.
  std::vector<RunResult> results(specs.size());
  RunEach(specs, [&results](std::size_t i, RunResult&& result) {
    results[i] = std::move(result);
  });
  return results;
}

void ExperimentRunner::RunEach(
    const std::vector<ExperimentSpec>& specs,
    const std::function<void(std::size_t, RunResult&&)>& consume) const {
  if (specs.empty()) {
    return;
  }

  // Work stealing over an atomic cursor; completed results are handed to
  // `consume` under one mutex, so consumers need no locking. A spec that
  // throws (e.g. an unknown balancer_name) must not escape its worker
  // thread - that would terminate the process - so the lowest-indexed
  // failure is captured and rethrown after the join, matching what the
  // single-threaded path would have raised first.
  //
  // Scaling: the cursor lives on its own cache line so cursor traffic never
  // invalidates the line holding the failure state or the caller's capture,
  // and workers claim contiguous chunks of specs (about four claims per
  // worker over the sweep) instead of one spec per fetch_add, so cursor
  // contention does not grow with the spec count. Chunking only changes
  // which thread runs which spec - every spec still runs exactly once and
  // results stay keyed by index - so determinism across thread counts is
  // unchanged.
  const std::size_t workers = std::min(num_threads_, specs.size());
  const std::size_t chunk = std::max<std::size_t>(1, specs.size() / (workers * 4));

  struct alignas(64) PaddedCursor {
    std::atomic<std::size_t> next{0};
  };
  PaddedCursor cursor;
  std::mutex consume_mutex;
  std::size_t failed_index = specs.size();
  std::exception_ptr failure;
  auto worker = [&]() {
    while (true) {
      const std::size_t start = cursor.next.fetch_add(chunk);
      if (start >= specs.size()) {
        return;
      }
      const std::size_t stop = std::min(start + chunk, specs.size());
      for (std::size_t i = start; i < stop; ++i) {
        try {
          Experiment experiment(specs[i].config, specs[i].options);
          RunResult result = experiment.Run(specs[i].workload);
          std::lock_guard<std::mutex> lock(consume_mutex);
          consume(i, std::move(result));
        } catch (...) {
          std::lock_guard<std::mutex> lock(consume_mutex);
          if (i < failed_index) {
            failed_index = i;
            failure = std::current_exception();
          }
        }
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  if (failure != nullptr) {
    std::rethrow_exception(failure);
  }
}

std::vector<ExperimentSpec> ExperimentRunner::SeedSweep(const ExperimentSpec& base,
                                                        std::size_t n) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExperimentSpec spec = base;
    spec.config.seed = base.config.seed + i;
    spec.name = base.name + "/seed" + std::to_string(spec.config.seed);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace eas
