#include "src/sim/frequency_phase.h"

#include "src/freq/governor_registry.h"

namespace eas {

void FrequencyPhase::EnsureGovernors(SimulationState& state) {
  if (!state.config().governed()) {
    initialized_ = true;
    active_ = false;
    return;
  }
  // Build the full set before committing any flags: CreateOrThrow may throw
  // on an unknown name, and a caller that catches and ticks again must find
  // the phase un-initialized, not active over an empty governor vector.
  const std::string& name = state.config().frequency_governor;
  std::vector<std::unique_ptr<FrequencyGovernor>> governors;
  const std::size_t physical = state.num_physical();
  governors.reserve(physical);
  for (std::size_t phys = 0; phys < physical; ++phys) {
    governors.push_back(FrequencyGovernorRegistry::Global().CreateOrThrow(name));
  }
  governors_ = std::move(governors);
  initialized_ = true;
  active_ = true;
}

void FrequencyPhase::GovernPackage(SimulationState& state, std::size_t physical,
                                   bool package_throttled) {
  if (!initialized_) {
    // easlint: allow(shard-confinement) -- first-call lazy init: the package-parallel pipeline calls EnsureReady() from a single thread before fanning out, so inside the parallel region initialized_ is always true and this branch never runs.
    EnsureGovernors(state);
  }
  if (!active_) {
    return;
  }

  const CpuTopology& topology = state.config().topology;
  const std::size_t siblings = topology.smt_per_physical();
  std::size_t runnable = 0;
  for (std::size_t t = 0; t < siblings; ++t) {
    if (!state.runqueue(topology.LogicalId(physical, t)).Idle()) {
      ++runnable;
    }
  }

  FrequencyDomain& domain = state.freq_domain(physical);
  GovernorInputs inputs;
  inputs.now = state.now();
  inputs.current_pstate = domain.current();
  inputs.num_pstates = domain.table().size();
  inputs.thermal_power_watts = state.PackageThermalPower(physical);
  inputs.budget_watts = state.MaxPowerPhysical(physical);
  inputs.hysteresis_watts = state.config().throttle_hysteresis_watts;
  inputs.utilization = static_cast<double>(runnable) / static_cast<double>(siblings);
  inputs.package_throttled = package_throttled;

  domain.SetPState(governors_[physical]->DecidePState(inputs));
  // Fault overrides trump the governor's decision: a thermal emergency
  // forces the deepest P-state for the window; a clamp floors the index
  // (deeper-than-floor governor choices stand - the clamp only forbids
  // running *faster* than the floor).
  if (state.config().faulted()) {
    if (state.EmergencyActive(physical)) {
      domain.SetPState(domain.table().deepest());
    } else if (state.ClampActive(physical) && domain.current() < state.clamp_floor(physical)) {
      domain.SetPState(state.clamp_floor(physical));
    }
  }
  domain.AccountTick();
}

}  // namespace eas
