// InvariantChecker: hard-fails a faulted run whose state stops making sense.
//
// A TickObserver attached by Experiment::Run whenever the config carries a
// fault plan. After every tick it sweeps the machine and throws
// std::runtime_error (naming the tick and the violated invariant) if chaos
// broke conservation anywhere:
//
//   - task conservation: every runqueue member's task->cpu() names that
//     queue, no task appears on two queues (or twice on one), and every
//     task the table says is on a CPU is found exactly once;
//   - offline confinement: no runqueue member sits on an offlined CPU;
//   - counter consistency: the sum of per-queue nr_running equals the
//     sharded total_runnable() the skip-ahead planner trusts;
//   - offline ledger: the state's offline_cpu_ticks equals the checker's
//     own per-tick accumulation of the offline-CPU count;
//   - residency accounting: a governed package's P-state residency total
//     advances exactly one tick per tick (fault windows must bend *which*
//     state is resident, never drop ticks);
//   - physics sanity: package true power and die temperature stay finite
//     (power also non-negative).
//
// The checker deliberately runs the same sweep on every tick including
// quiescent-span boundaries; its NextObservableTick keeps the default
// "every tick is observable", which (together with the engine gating in
// Advance) pins faulted runs to observer-visible per-tick stepping.

#ifndef SRC_SIM_INVARIANT_CHECKER_H_
#define SRC_SIM_INVARIANT_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulation_engine.h"

namespace eas {

class InvariantChecker : public TickObserver {
 public:
  // Baselines the ledgers against `state` so the checker can attach to a
  // machine that already ran (residency and offline ticks are deltas).
  explicit InvariantChecker(const SimulationState& state);

  void OnTick(const SimulationState& state) override;

  std::int64_t ticks_checked() const { return ticks_checked_; }

 private:
  [[noreturn]] void Violate(const SimulationState& state, const std::string& what) const;

  std::int64_t ticks_checked_ = 0;
  std::int64_t offline_ticks_baseline_ = 0;
  std::int64_t offline_ticks_accumulated_ = 0;
  std::vector<Tick> residency_baseline_;  // per package, governed only
  // Scratch: tasks seen this sweep, indexed by task id (ids are assigned
  // sequentially from 1, so the vector stays dense).
  std::vector<std::uint8_t> seen_;
};

}  // namespace eas

#endif  // SRC_SIM_INVARIANT_CHECKER_H_
