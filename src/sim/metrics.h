// The run-metric schema: every scalar and series column a RunResult can
// export, named exactly once.
//
// Before this registry existed, each exporter (the summary CSV, the bench
// JSON emitters, eastool's stdout report) hand-rolled its own column list
// and re-implemented the "DVFS columns only when governed" special case.
// The MetricRegistry is the single source of truth instead: exporters ask
// it for the ordered scalar table of a result and render that, so a new
// metric (or a new feature-conditional column family) is added in one place
// and every exporter picks it up - with the presence rule (e.g. "only when
// the run was governed") encoded in the metric's expander, not in each
// exporter.
//
// Registration order is the column order of every renderer, so the built-in
// order is pinned to the historical summary-CSV layout: changing it breaks
// the byte-identity guarantee the golden tests enforce.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/experiment.h"

namespace eas {

// One scalar cell of the metric table: a column name and its value with the
// rendering precision the historical CSVs used.
struct MetricValue {
  std::string name;
  double value = 0.0;
  int precision = 4;      // fractional digits when !integral
  bool integral = false;  // render as a plain integer (e.g. migrations)
};

// Renders a value the way the summary CSV always has: "%lld" for integral
// metrics, "%.<precision>f" otherwise. Every sink uses this, so a metric
// prints identically in CSV, JSONL and stdout tables.
std::string FormatMetricValue(const MetricValue& value);

class MetricRegistry {
 public:
  // Appends zero or more MetricValues for `result`. A family that does not
  // apply to the run (e.g. DVFS columns of an ungoverned run) appends
  // nothing - that is the one place the presence rule lives.
  using ScalarExpander = std::function<void(const RunResult&, std::vector<MetricValue>&)>;

  // A named trace column family: which SeriesSet of the result it reads.
  // An empty set means the run did not record it (frequency when
  // ungoverned, task_cpu unless requested).
  struct SeriesColumn {
    std::string name;
    const SeriesSet& (*series)(const RunResult&);
  };

  // The process-wide schema, with the built-in metrics pre-registered in
  // the historical summary-CSV order.
  static const MetricRegistry& Global();

  // The ordered scalar table of `result`: every registered family expanded,
  // absent families contributing no rows.
  std::vector<MetricValue> Scalars(const RunResult& result) const;

  // Every registered series family, in registration order.
  std::vector<SeriesColumn> Series() const;

  // Registers a scalar family / series column. Appended after the existing
  // entries; `family` is documentation (the expander names its columns).
  void RegisterScalar(const std::string& family, ScalarExpander expander);
  void RegisterSeries(const std::string& name, const SeriesSet& (*series)(const RunResult&));

  // An empty registry (tests build private ones; Global() is the shared,
  // builtin-populated instance).
  MetricRegistry() = default;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, ScalarExpander>> scalars_;
  std::vector<SeriesColumn> series_;
};

// Registers the built-in metric families into `registry` (exposed for tests
// that build private registries; Global() already includes them).
void RegisterBuiltinMetrics(MetricRegistry& registry);

}  // namespace eas

#endif  // SRC_SIM_METRICS_H_
