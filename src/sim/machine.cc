#include "src/sim/machine.h"

#include <cassert>
#include <limits>

#include "src/counters/calibration.h"

namespace eas {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      domains_(DomainHierarchy::Build(config.topology)),
      rng_(config.seed),
      load_balancer_(LoadBalancer::Options{}),
      energy_balancer_(config.sched.balancer),
      hot_migrator_(config.sched.hot_migration) {
  const std::size_t logical = config_.topology.num_logical();
  const std::size_t physical = config_.topology.num_physical();
  const std::size_t siblings = config_.topology.smt_per_physical();
  assert(config_.cooling.num_physical() >= physical);

  // Calibrated estimator: either injected weights or a fresh calibration run
  // against the machine's power meter (the realistic path).
  EventWeights weights;
  if (config_.estimator_weights.has_value()) {
    weights = *config_.estimator_weights;
  } else {
    weights = Calibrator::CalibrateDefault(config_.model, config_.seed ^ 0xca11b7a7eULL,
                                           config_.meter_error_stddev)
                  .weights;
  }
  estimator_ = std::make_unique<EnergyEstimator>(
      weights, config_.model.active_base_power() / static_cast<double>(siblings));

  const double idle_logical = IdlePowerPerLogical();
  for (std::size_t cpu = 0; cpu < logical; ++cpu) {
    const std::size_t phys = config_.topology.PhysicalOf(static_cast<int>(cpu));
    const ThermalParams& params = config_.cooling.ParamsFor(phys);
    double max_physical;
    if (config_.explicit_max_power_physical.has_value()) {
      max_physical = *config_.explicit_max_power_physical;
    } else {
      max_physical = params.MaxPowerForTemp(config_.temp_limit);
    }
    max_power_logical_.push_back(max_physical / static_cast<double>(siblings));
    runqueues_.push_back(std::make_unique<Runqueue>(static_cast<int>(cpu)));
    counters_.emplace_back();
    power_states_.emplace_back(max_power_logical_.back(), params.TimeConstant(), idle_logical);
    throttles_.emplace_back(config_.throttle_hysteresis_watts);
  }
  for (std::size_t phys = 0; phys < physical; ++phys) {
    thermal_.emplace_back(config_.cooling.ParamsFor(phys));
    last_true_power_.push_back(config_.model.halt_power());
    package_throttles_.emplace_back(config_.throttle_hysteresis_watts);
  }
}

double Machine::IdlePowerPerLogical() const {
  return config_.model.halt_power() / static_cast<double>(config_.topology.smt_per_physical());
}

double Machine::MaxPowerPhysical(std::size_t physical) const {
  const int first_logical = config_.topology.LogicalId(physical, 0);
  return max_power_logical_[static_cast<std::size_t>(first_logical)] *
         static_cast<double>(config_.topology.smt_per_physical());
}

double Machine::RunqueuePower(int cpu) const {
  return runqueues_[static_cast<std::size_t>(cpu)]->AveragePower(IdlePowerPerLogical());
}

double Machine::ThermalPower(int cpu) const {
  return power_states_[static_cast<std::size_t>(cpu)].thermal_power();
}

double Machine::MaxPower(int cpu) const { return max_power_logical_[static_cast<std::size_t>(cpu)]; }

double Machine::Temperature(std::size_t physical) const {
  return thermal_[physical].temperature();
}

double Machine::TruePower(std::size_t physical) const { return last_true_power_[physical]; }

int Machine::TaskCpu(const Task& task) {
  if (task.state() == TaskState::kSleeping || task.state() == TaskState::kFinished) {
    return kInvalidCpu;
  }
  return task.cpu();
}

Task* Machine::Spawn(const Program& program, int nice) {
  auto task = std::make_unique<Task>(next_task_id_++, &program, rng_.NextU64());
  Task* raw = task.get();
  raw->set_nice(nice);
  // The profile's standard period stays the nice-0 timeslice for every task:
  // the variable-period exponential average normalizes any actual period
  // length (Section 3.3), so profiles of tasks with different priorities
  // remain comparable.
  raw->profile() = EnergyProfile(config_.profile_sample_weight, config_.timeslice_ticks);
  tasks_.push_back(std::move(task));

  int cpu;
  if (config_.sched.energy_aware_placement) {
    cpu = placement_.Place(*raw, *this, registry_);
  } else {
    cpu = PlaceLeastLoadedRandomTie();
    // The baseline still needs a profile seed so balancing math is defined;
    // stock Linux simply has no energy profile, which corresponds to seeding
    // with the registry default (no per-binary knowledge).
    raw->profile().Seed(registry_.default_power());
  }
  raw->set_timeslice_left(Task::TimesliceForNice(raw->nice(), config_.timeslice_ticks));
  runqueue(cpu).Enqueue(raw);
  return raw;
}

int Machine::PlaceLeastLoadedRandomTie() {
  // Stock Linux 2.6 exec placement through the domain hierarchy: least
  // loaded CPU, preferring an idle *package* over the idle sibling of a
  // busy one (SMT-aware). Remaining ties break randomly, modelling the
  // incidental state (exec'ing CPU, parent's cache) that decides in a real
  // system, without biasing toward CPU 0.
  std::size_t min_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    min_load = std::min(min_load, runqueue(static_cast<int>(cpu)).nr_running());
  }
  std::size_t min_package_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    if (runqueue(static_cast<int>(cpu)).nr_running() != min_load) {
      continue;
    }
    std::size_t package_load = 0;
    for (int sibling : config_.topology.SiblingsOf(static_cast<int>(cpu))) {
      package_load += runqueue(sibling).nr_running();
    }
    min_package_load = std::min(min_package_load, package_load);
  }
  std::vector<int> candidates;
  for (std::size_t cpu = 0; cpu < num_cpus(); ++cpu) {
    if (runqueue(static_cast<int>(cpu)).nr_running() != min_load) {
      continue;
    }
    std::size_t package_load = 0;
    for (int sibling : config_.topology.SiblingsOf(static_cast<int>(cpu))) {
      package_load += runqueue(sibling).nr_running();
    }
    if (package_load == min_package_load) {
      candidates.push_back(static_cast<int>(cpu));
    }
  }
  return candidates[rng_.NextBelow(candidates.size())];
}

bool Machine::MigrateTask(Task* task, int from, int to) {
  if (from == to) {
    return false;
  }
  Runqueue& src = runqueue(from);
  Runqueue& dst = runqueue(to);

  if (src.current() == task) {
    CommitPeriod(*task);
    src.TakeCurrent();
  } else if (!src.Remove(task)) {
    return false;
  }

  const bool crossed_node = !config_.topology.SameNode(from, to);
  task->NoteMigration(crossed_node, crossed_node ? config_.warmup_ticks_cross_node
                                                 : config_.warmup_ticks_same_node);
  dst.Enqueue(task);
  ++migration_count_;
  return true;
}

void Machine::CommitPeriod(Task& task) {
  const bool first = task.first_period_pending();
  const Tick period = task.period_ticks();
  const double energy = task.CommitAccountingPeriod();
  if (first && period > 0) {
    registry_.RecordFirstTimeslice(task.program().binary_id(),
                                   energy / TicksToSeconds(period));
  }
}

void Machine::WakeSleepers() {
  for (auto& task : tasks_) {
    if (task->state() == TaskState::kSleeping && task->wake_tick() <= now_) {
      // Wake on the CPU the task last ran on (affinity).
      runqueue(task->cpu()).EnqueueFront(task.get());
    }
  }
}

void Machine::SwitchInIfIdle(int cpu) {
  Runqueue& rq = runqueue(cpu);
  if (rq.current() != nullptr) {
    return;
  }
  Task* next = rq.PickNext();
  if (next != nullptr) {
    next->set_timeslice_left(Task::TimesliceForNice(next->nice(), config_.timeslice_ticks));
    next->BeginAccountingPeriod();
  }
}

void Machine::ExecuteCpus() {
  const std::size_t physical = config_.topology.num_physical();
  const std::size_t siblings = config_.topology.smt_per_physical();
  const double static_share = estimator_->static_power_per_logical();
  const double idle_share = IdlePowerPerLogical();

  for (std::size_t phys = 0; phys < physical; ++phys) {
    // Thermal throttling is a package-level decision: only physical
    // processors overheat, so the controller compares the sum of the sibling
    // thermal powers against the package's maximum power and halts the whole
    // package (hlt stops the core, not a logical thread).
    bool throttled = false;
    if (config_.throttling_enabled) {
      double thermal_sum = 0.0;
      for (std::size_t t = 0; t < siblings; ++t) {
        thermal_sum += ThermalPower(config_.topology.LogicalId(phys, t));
      }
      throttled =
          package_throttles_[phys].ShouldThrottle(thermal_sum, MaxPowerPhysical(phys));
      package_throttles_[phys].AccountTick(throttled);
    }

    // Which siblings will actually execute this tick?
    std::vector<int> active;
    for (std::size_t t = 0; t < siblings; ++t) {
      const int cpu = config_.topology.LogicalId(phys, t);
      SwitchInIfIdle(cpu);
      Runqueue& rq = runqueue(cpu);

      const bool wants_to_run = rq.current() != nullptr;
      if (config_.throttling_enabled) {
        // Per-logical statistics (Table 3): a tick counts as throttled for a
        // logical CPU when the package halt kept its task from running.
        throttles_[static_cast<std::size_t>(cpu)].AccountTick(throttled && wants_to_run);
      }
      if (wants_to_run && !throttled) {
        active.push_back(cpu);
      }
    }

    const double corun_speed = active.size() >= 2 ? config_.smt_corun_speed : 1.0;
    double true_dynamic = 0.0;

    for (int cpu : active) {
      Task* task = runqueue(cpu).current();
      double speed = corun_speed;
      if (task->warmup_ticks_left() > 0) {
        speed *= config_.warmup_speed;
      }
      const EventVector events = task->ExecuteTick(speed);
      counters_[static_cast<std::size_t>(cpu)].Accumulate(events);
      true_dynamic += config_.model.DynamicEnergy(events);

      // Estimated per-tick energy: what the kernel's estimator attributes.
      const double estimated =
          estimator_->EstimateDynamicEnergy(events) + static_share * kTickSeconds;
      task->AccumulateEnergy(estimated);
      task->AccountActiveTick();
      task->TickTimeslice();
      power_states_[static_cast<std::size_t>(cpu)].AccountEnergy(estimated, kTickSeconds);
    }

    // Inactive (idle or throttled) siblings burn their halt-power share.
    for (std::size_t t = 0; t < siblings; ++t) {
      const int cpu = config_.topology.LogicalId(phys, t);
      bool is_active = false;
      for (int a : active) {
        if (a == cpu) {
          is_active = true;
        }
      }
      if (!is_active) {
        power_states_[static_cast<std::size_t>(cpu)].AccountEnergy(idle_share * kTickSeconds,
                                                                   kTickSeconds);
      }
    }

    // True electrical power of the package this tick.
    const double n_active = static_cast<double>(active.size());
    const double n_total = static_cast<double>(siblings);
    const double static_true =
        active.empty()
            ? config_.model.halt_power()
            : config_.model.active_base_power() * (n_active / n_total) +
                  config_.model.halt_power() * ((n_total - n_active) / n_total);
    const double true_power = static_true + true_dynamic / kTickSeconds;
    last_true_power_[phys] = true_power;
    thermal_[phys].Step(true_power, kTickSeconds);

    // Lifecycle: blocking, completion, timeslice expiry.
    for (int cpu : active) {
      HandleLifecycle(cpu);
    }
  }
}

void Machine::HandleLifecycle(int cpu) {
  Runqueue& rq = runqueue(cpu);
  Task* task = rq.current();
  if (task == nullptr) {
    return;
  }

  // Blocking (the task called a blocking syscall at the end of a burst).
  const Tick sleep = task->TakePendingSleep();
  if (sleep > 0) {
    CommitPeriod(*task);
    rq.TakeCurrent();
    task->set_state(TaskState::kSleeping);
    task->set_wake_tick(now_ + sleep);
    return;
  }

  // Work completion.
  if (task->WorkComplete()) {
    CommitPeriod(*task);
    if (config_.respawn_completed) {
      task->RestartProgram();
      // A respawned task models a fresh process of the same binary: it goes
      // through placement again, seeded from the registry.
      rq.TakeCurrent();
      int cpu_new;
      if (config_.sched.energy_aware_placement) {
        cpu_new = placement_.Place(*task, *this, registry_);
      } else {
        cpu_new = PlaceLeastLoadedRandomTie();
      }
      task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config_.timeslice_ticks));
      runqueue(cpu_new).Enqueue(task);
    } else {
      rq.TakeCurrent();
      task->set_state(TaskState::kFinished);
    }
    return;
  }

  // Timeslice expiry: rotate within the local queue.
  if (task->timeslice_left() <= 0) {
    CommitPeriod(*task);
    task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config_.timeslice_ticks));
    if (rq.nr_queued() > 0) {
      rq.TakeCurrent();
      rq.Enqueue(task);
    }
    // Alone on the queue: keep running; the period was still committed so
    // the profile and registry stay fresh.
  }
}

void Machine::RunBalancers() {
  const std::size_t logical = config_.topology.num_logical();
  for (std::size_t i = 0; i < logical; ++i) {
    const int cpu = static_cast<int>(i);
    const Tick stagger = static_cast<Tick>(i) * 17;

    const bool idle = runqueue(cpu).Idle();
    const Tick interval =
        idle ? config_.sched.idle_balance_interval_ticks : config_.sched.balance_interval_ticks;
    if ((now_ + stagger) % interval == 0) {
      if (!config_.sched.energy_balancing) {
        load_balancer_.Balance(cpu, *this);
      } else {
        switch (config_.sched.balancer_kind) {
          case BalancerKind::kLoadOnly:
            load_balancer_.Balance(cpu, *this);
            break;
          case BalancerKind::kEnergyAware:
            energy_balancer_.Balance(cpu, *this);
            break;
          case BalancerKind::kPowerOnly:
            power_only_balancer_.Balance(cpu, *this);
            break;
          case BalancerKind::kTemperatureOnly:
            temperature_only_balancer_.Balance(cpu, *this);
            break;
        }
      }
    }

    if (config_.sched.hot_task_migration &&
        (now_ + stagger) % config_.sched.hot_check_interval_ticks == 0) {
      hot_migrator_.Check(cpu, *this);
    }
  }
}

void Machine::Step() {
  WakeSleepers();
  ExecuteCpus();
  RunBalancers();
  ++now_;
}

void Machine::Run(Tick n) {
  for (Tick i = 0; i < n; ++i) {
    Step();
  }
}

double Machine::TotalWorkDone() const {
  double total = 0.0;
  for (const auto& task : tasks_) {
    total += task->work_done_ticks() +
             static_cast<double>(task->completions()) *
                 static_cast<double>(task->program().total_work_ticks());
  }
  return total;
}

std::int64_t Machine::TotalCompletions() const {
  std::int64_t total = 0;
  for (const auto& task : tasks_) {
    total += task->completions();
  }
  return total;
}

double Machine::TotalTaskEnergy() const {
  double total = 0.0;
  for (const auto& task : tasks_) {
    total += task->total_energy();
  }
  return total;
}

}  // namespace eas
