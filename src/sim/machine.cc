#include "src/sim/machine.h"

#include "src/freq/governor_registry.h"

namespace eas {

Machine::Machine(const MachineConfig& config) : state_(config), engine_(config.sched) {
  // Fail fast on an unknown frequency governor, mirroring the policy
  // registry throw from the engine's BalancePhase (the engine itself only
  // resolves the governor lazily on the first tick).
  FrequencyGovernorRegistry::Global().CreateOrThrow(config.frequency_governor);
}

void Machine::Run(Tick n) { engine_.Advance(state_, n); }

}  // namespace eas
