#include "src/sim/machine.h"

namespace eas {

Machine::Machine(const MachineConfig& config) : state_(config), engine_(config.sched) {}

void Machine::Run(Tick n) {
  for (Tick i = 0; i < n; ++i) {
    Step();
  }
}

}  // namespace eas
