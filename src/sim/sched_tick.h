// Scheduler-tick phase: wakeups, switch-in, execution, and end-of-tick task
// lifecycle (blocking, completion, timeslice expiry).
//
// This is the Linux-2.6 part of the per-tick pipeline - everything that
// decides *which* task runs and for how long. Energy attribution is the
// CounterSampler's job; this phase only advances tasks and emits their
// counter events.

#ifndef SRC_SIM_SCHED_TICK_H_
#define SRC_SIM_SCHED_TICK_H_

#include <vector>

#include "src/base/annotations.h"
#include "src/counters/event_types.h"
#include "src/sim/simulation_state.h"

namespace eas {

class SchedTick {
 public:
  // Spawns every workload arrival due at the current tick (scheduled through
  // SimulationState::ScheduleArrival), in schedule order. Runs before
  // WakeSleepers: an arrival's placement sees the queues as they were at the
  // end of the previous tick, exactly as the chunked experiment loop this
  // replaced did.
  EAS_CROSS_SHARD void SpawnArrivals(SimulationState& state) const;

  // Moves every sleeping task whose wake tick has arrived back onto the
  // runqueue it last ran on (wake affinity, Section 4.1). Pops the state's
  // wake queue instead of scanning the task table: cost scales with the
  // wakeups due this tick, not with the tasks ever spawned.
  EAS_CROSS_SHARD void WakeSleepers(SimulationState& state) const;

  // Switches in the next queued task on every idle sibling of `physical`.
  EAS_SHARD_LOCAL void SwitchInPackage(SimulationState& state, std::size_t physical) const;

  // Fills `active` with the logical CPUs of `physical` that execute this
  // tick: those with a current task, unless the package is halted.
  EAS_SHARD_LOCAL void SelectActive(const SimulationState& state, std::size_t physical,
                                    bool throttled, std::vector<int>& active) const;

  // Executes one tick on each active CPU (SMT co-run and cache-warmup
  // slowdowns applied, everything scaled by the package's DVFS frequency
  // multiplier - 1.0 when ungoverned) and decrements timeslices. `events[i]`
  // receives the counter events of `active[i]`.
  EAS_SHARD_LOCAL void ExecuteActive(SimulationState& state, const std::vector<int>& active,
                                     std::vector<EventVector>& events,
                                     double frequency_multiplier = 1.0) const;

  // End-of-tick lifecycle for `cpu`'s current task: start a blocking sleep,
  // respawn or retire on completion, rotate on timeslice expiry. Cross-shard
  // (sequential): respawn placement scans every runqueue and commits feed
  // the shared binary registry.
  EAS_CROSS_SHARD void HandleLifecycle(SimulationState& state, int cpu) const;
};

}  // namespace eas

#endif  // SRC_SIM_SCHED_TICK_H_
