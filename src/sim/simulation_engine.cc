#include "src/sim/simulation_engine.h"

#include <algorithm>

#include "src/core/policy_registry.h"

namespace eas {

BalancePhase::BalancePhase(const EnergySchedConfig& sched)
    : sched_(sched),
      policy_(BalancePolicyRegistry::Global().CreateOrThrow(EffectiveBalancerName(sched), sched)),
      hot_migrator_(sched.hot_migration) {}

void BalancePhase::Run(SimulationState& state) {
  const EnergySchedConfig& sched = sched_;
  const std::size_t logical = state.config().topology.num_logical();
  for (std::size_t i = 0; i < logical; ++i) {
    const int cpu = static_cast<int>(i);
    const Tick stagger = static_cast<Tick>(i) * 17;

    const bool idle = state.runqueue(cpu).Idle();
    const Tick interval =
        idle ? sched.idle_balance_interval_ticks : sched.balance_interval_ticks;
    if ((state.now() + stagger) % interval == 0) {
      policy_->Balance(cpu, state);
    }

    if (sched.hot_task_migration &&
        (state.now() + stagger) % sched.hot_check_interval_ticks == 0) {
      hot_migrator_.Check(cpu, state);
    }
  }
}

SimulationEngine::SimulationEngine(const EnergySchedConfig& sched) : balance_(sched) {}

void SimulationEngine::Tick(SimulationState& state) {
  sched_tick_.SpawnArrivals(state);
  sched_tick_.WakeSleepers(state);

  const std::size_t physical = state.num_physical();
  for (std::size_t phys = 0; phys < physical; ++phys) {
    const bool throttled = throttle_gate_.GatePackage(state, phys);
    frequency_.GovernPackage(state, phys, throttled);
    sched_tick_.SwitchInPackage(state, phys);
    throttle_gate_.AccountCpuTicks(state, phys, throttled);
    sched_tick_.SelectActive(state, phys, throttled, active_);
    sched_tick_.ExecuteActive(state, active_, events_,
                              state.freq_domain(phys).frequency_multiplier());
    const double true_dynamic = counter_sampler_.Sample(state, phys, active_, events_);
    thermal_stepper_.StepPackage(state, phys, active_.size(), true_dynamic);
    for (int cpu : active_) {
      sched_tick_.HandleLifecycle(state, cpu);
    }
  }

  balance_.Run(state);
  state.AdvanceTick();

  for (TickObserver* observer : observers_) {
    observer->OnTick(state);
  }
}

void SimulationEngine::AddObserver(TickObserver* observer) {
  observers_.push_back(observer);
}

void SimulationEngine::RemoveObserver(TickObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

}  // namespace eas
