#include "src/sim/simulation_engine.h"

#include <algorithm>

#include "src/core/policy_registry.h"

namespace eas {

BalancePhase::BalancePhase(const EnergySchedConfig& sched)
    : sched_(sched),
      policy_(BalancePolicyRegistry::Global().CreateOrThrow(EffectiveBalancerName(sched), sched)),
      hot_migrator_(sched.hot_migration) {}

void BalancePhase::Run(SimulationState& state) {
  const EnergySchedConfig& sched = sched_;
  const std::size_t logical = state.config().topology.num_logical();
  for (std::size_t i = 0; i < logical; ++i) {
    const int cpu = static_cast<int>(i);
    if (!state.CpuOnline(cpu)) {
      continue;  // an offlined CPU neither pulls work nor sheds hot tasks
    }
    const Tick stagger = static_cast<Tick>(i) * 17;

    const bool idle = state.runqueue(cpu).Idle();
    const Tick interval =
        idle ? sched.idle_balance_interval_ticks : sched.balance_interval_ticks;
    if ((state.now() + stagger) % interval == 0) {
      policy_->Balance(cpu, state);
    }

    if (sched.hot_task_migration &&
        (state.now() + stagger) % sched.hot_check_interval_ticks == 0) {
      hot_migrator_.Check(cpu, state);
    }
  }
}

SimulationEngine::SimulationEngine(const EnergySchedConfig& sched) : balance_(sched) {}

void SimulationEngine::Tick(SimulationState& state) {
  if (state.config().intra_run_threads == 0) {
    TickInterleaved(state);
  } else {
    TickSharded(state);
  }
}

void SimulationEngine::TickInterleaved(SimulationState& state) {
  if (state.config().faulted()) {
    fault_.Run(state);
  }
  sched_tick_.SpawnArrivals(state);
  sched_tick_.WakeSleepers(state);

  const std::size_t physical = state.num_physical();
  for (std::size_t phys = 0; phys < physical; ++phys) {
    const bool throttled = throttle_gate_.GatePackage(state, phys);
    frequency_.GovernPackage(state, phys, throttled);
    sched_tick_.SwitchInPackage(state, phys);
    throttle_gate_.AccountCpuTicks(state, phys, throttled);
    sched_tick_.SelectActive(state, phys, throttled, active_);
    sched_tick_.ExecuteActive(state, active_, events_,
                              state.freq_domain(phys).frequency_multiplier());
    const double true_dynamic = counter_sampler_.Sample(state, phys, active_, events_);
    thermal_stepper_.StepPackage(state, phys, active_.size(), true_dynamic);
    for (int cpu : active_) {
      sched_tick_.HandleLifecycle(state, cpu);
    }
  }

  balance_.Run(state);
  state.AdvanceTick();

  for (TickObserver* observer : observers_) {
    observer->OnTick(state);
  }
}

void SimulationEngine::EnsureShardedRuntime(SimulationState& state) {
  const std::size_t physical = state.num_physical();
  if (pool_ == nullptr) {
    // More workers than packages would only idle; each worker needs its own
    // sampler and event scratch.
    std::size_t workers = state.config().intra_run_threads;
    if (workers > physical) {
      workers = physical;
    }
    pool_ = std::make_unique<PackageWorkerPool>(workers);
    worker_samplers_.resize(pool_->num_workers());
    worker_events_.resize(pool_->num_workers());
  }
  if (package_active_.size() < physical) {
    package_active_.resize(physical);
  }
  // Governor construction happens here, on the calling thread, not lazily
  // inside the fan-out.
  frequency_.EnsureReady(state);
}

void SimulationEngine::TickSharded(SimulationState& state) {
  if (state.config().faulted()) {
    fault_.Run(state);
  }
  sched_tick_.SpawnArrivals(state);
  sched_tick_.WakeSleepers(state);

  EnsureShardedRuntime(state);

  // Package-local phases: each package touches only its own shard (and the
  // tasks its runqueues hold), so the packages are independent and the
  // worker count cannot change any result.
  const std::size_t physical = state.num_physical();
  pool_->Run(physical, [&](std::size_t phys, std::size_t worker) {
    const bool throttled = throttle_gate_.GatePackage(state, phys);
    frequency_.GovernPackage(state, phys, throttled);
    sched_tick_.SwitchInPackage(state, phys);
    throttle_gate_.AccountCpuTicks(state, phys, throttled);
    std::vector<int>& active = package_active_[phys];
    std::vector<EventVector>& events = worker_events_[worker];
    sched_tick_.SelectActive(state, phys, throttled, active);
    sched_tick_.ExecuteActive(state, active, events,
                              state.freq_domain(phys).frequency_multiplier());
    const double true_dynamic = worker_samplers_[worker].Sample(state, phys, active, events);
    thermal_stepper_.StepPackage(state, phys, active.size(), true_dynamic);
  });

  // Task lifecycle mutates cross-package state (respawn placement scans
  // every runqueue, sleeps push the shared wake queue, period commits feed
  // the shared binary registry), so it runs sequentially, in package order.
  for (std::size_t phys = 0; phys < physical; ++phys) {
    for (int cpu : package_active_[phys]) {
      sched_tick_.HandleLifecycle(state, cpu);
    }
  }

  balance_.Run(state);
  state.AdvanceTick();

  for (TickObserver* observer : observers_) {
    observer->OnTick(state);
  }
}

void SimulationEngine::Advance(SimulationState& state, eas::Tick ticks) {
  const MachineConfig& config = state.config();
  const bool skip_eligible = config.skip_ahead && balance_.policy().IdleMachineIsNoop();
  // Faulted machines never take the closed-form path: the slow kernel runs
  // the observers (the InvariantChecker must see every tick) and recomputes
  // the gate and governor, whose decisions fault windows change.
  const bool fast_eligible =
      skip_eligible && !config.governed() && !config.throttling_enabled && !config.faulted();
  const eas::Tick end = state.now() + ticks;

  while (state.now() < end) {
    if (skip_eligible && state.total_runnable() == 0 &&
        (!config.faulted() || state.FaultQuiescent())) {
      // Next interesting tick: the span must stop where a naive tick would
      // do real work. A wake or arrival due at tick t is processed at the
      // start of the tick beginning at t, so the span may run up to t
      // exactly; observers fire after the clock advances, so the fast path
      // (which skips them) stops at the earliest observable now value. A
      // pending fault event bounds the span the same way: it must be
      // applied by FaultPhase inside a full tick, never jumped over.
      eas::Tick span_end = end;
      span_end = std::min(span_end, state.wake_queue().NextEventTick(span_end));
      span_end = std::min(span_end, state.arrival_queue().NextEventTick(span_end));
      if (config.faulted()) {
        span_end = std::min(span_end, state.fault_queue().NextEventTick(span_end));
      }
      if (fast_eligible) {
        for (TickObserver* observer : observers_) {
          span_end = std::min(span_end, observer->NextObservableTick(state.now()));
        }
      }
      const eas::Tick span = span_end - state.now();
      if (span > 0) {
        if (fast_eligible) {
          RunQuiescentSpanFast(state, span);
          // The span boundary may be an observer's sampling tick; calling
          // every observer is safe because off-grid OnTicks are no-ops by
          // the NextObservableTick contract.
          for (TickObserver* observer : observers_) {
            observer->OnTick(state);
          }
        } else {
          RunQuiescentSpanSlow(state, span);
        }
        continue;
      }
    }
    Tick(state);
  }
}

void SimulationEngine::RunQuiescentSpanFast(SimulationState& state, eas::Tick span) {
  // Exactly the state a naive idle tick mutates, integrated over the span:
  //  - every logical CPU's thermal-power average absorbs its idle share
  //    (CounterSampler's inactive-sibling credit; no CPU is active);
  //  - every package's true power is the halt power (ThermalStepper with
  //    active_count == 0 and zero dynamic energy) and its RC model steps at
  //    that constant power.
  // Heap peeks, switch-in, selection, execution, lifecycle and balancing
  // touch nothing on an idle machine and draw no randomness, so eliding
  // them is bit-neutral. The bulk helpers replay the per-tick floating-
  // point recurrences exactly (hoisting only constant-operand expressions).
  const double idle_share = state.IdlePowerPerLogical();
  const double idle_joules = idle_share * kTickSeconds;
  const std::size_t logical = state.num_cpus();
  for (std::size_t cpu = 0; cpu < logical; ++cpu) {
    state.power_state(static_cast<int>(cpu))
        .AccountEnergyRepeated(idle_joules, kTickSeconds, span);
  }

  // ThermalStepper's idle expression: halt static power plus zero dynamic
  // energy over the tick. `+ 0.0 / kTickSeconds` adds exact +0.0 to a
  // positive value, so the result is bitwise the halt power.
  const double true_power = state.config().model.halt_power() + 0.0 / kTickSeconds;
  const std::size_t physical = state.num_physical();
  for (std::size_t phys = 0; phys < physical; ++phys) {
    state.set_true_power(phys, true_power);
    state.thermal(phys).StepN(true_power, kTickSeconds, span);
  }

  state.AdvanceTicks(span);
}

void SimulationEngine::RunQuiescentSpanSlow(SimulationState& state, eas::Tick span) {
  // Per-tick reduced kernel: the throttle gate and the frequency governor
  // read the evolving thermal state (and keep hysteresis latches and
  // residency counters), so their decisions must be recomputed every tick.
  // Everything else an idle tick runs is replayed through the same phase
  // components the full pipeline uses; the skipped phases are the provably
  // inert ones (heaps, switch-in, selection, execution, lifecycle, balance).
  const std::size_t physical = state.num_physical();
  for (eas::Tick i = 0; i < span; ++i) {
    for (std::size_t phys = 0; phys < physical; ++phys) {
      const bool throttled = throttle_gate_.GatePackage(state, phys);
      frequency_.GovernPackage(state, phys, throttled);
      throttle_gate_.AccountCpuTicks(state, phys, throttled);
      active_.clear();
      events_.clear();
      const double true_dynamic = counter_sampler_.Sample(state, phys, active_, events_);
      thermal_stepper_.StepPackage(state, phys, active_.size(), true_dynamic);
    }
    state.AdvanceTick();
    for (TickObserver* observer : observers_) {
      observer->OnTick(state);
    }
  }
}

void SimulationEngine::AddObserver(TickObserver* observer) {
  observers_.push_back(observer);
}

void SimulationEngine::RemoveObserver(TickObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

}  // namespace eas
