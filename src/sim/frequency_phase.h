// Frequency-scaling phase: per-package governor decisions and P-state
// residency accounting.
//
// Slots into the engine tick between the ThrottleGate's hlt decision and the
// SchedTick switch-in, so a governor sees the same thermal-power metric the
// gate compared and its P-state applies to everything executed this tick.
// The governor is selected by name from MachineConfig::frequency_governor
// through the FrequencyGovernorRegistry, one instance per physical package
// (governors keep per-package state as plain members). The "none" governor
// short-circuits to a no-op - no decisions, no residency accounting, not a
// single floating-point operation - which is what keeps a none-governor
// machine bit-identical to one predating the frequency layer.

#ifndef SRC_SIM_FREQUENCY_PHASE_H_
#define SRC_SIM_FREQUENCY_PHASE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/base/annotations.h"
#include "src/freq/frequency_governor.h"
#include "src/sim/simulation_state.h"

namespace eas {

class FrequencyPhase {
 public:
  // Runs the package's governor for this tick: gathers the inputs (thermal
  // power vs budget, utilization, the hlt decision), applies the returned
  // P-state to the package's FrequencyDomain and accounts one residency
  // tick. No-op when the configured governor is "none". Throws
  // std::invalid_argument on the first call if the configured governor name
  // is unknown (Machine's constructor validates earlier for a fail-fast
  // path).
  EAS_SHARD_LOCAL void GovernPackage(SimulationState& state, std::size_t physical,
                                     bool package_throttled);

  // Forces the lazy governor construction now, from a single thread. The
  // engine's package-parallel pipeline calls this before fanning out:
  // GovernPackage's first-call initialization mutates shared phase state
  // (the governor vector and the init flags) and must not race.
  void EnsureReady(SimulationState& state) {
    if (!initialized_) {
      EnsureGovernors(state);
    }
  }

 private:
  // Governors are created lazily on the first tick because the engine only
  // learns the machine (config and package count) from the state it is
  // handed; one engine is paired with one state in practice. Cross-shard:
  // mutates the phase-wide governor vector and init flags shared by every
  // package.
  EAS_CROSS_SHARD void EnsureGovernors(SimulationState& state);

  bool initialized_ = false;
  bool active_ = false;
  std::vector<std::unique_ptr<FrequencyGovernor>> governors_;  // per physical
};

}  // namespace eas

#endif  // SRC_SIM_FREQUENCY_PHASE_H_
