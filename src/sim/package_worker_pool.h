// A small persistent worker pool for the package-parallel tick pipeline.
//
// The engine's sharded mode hands the pool one job per tick: "run this
// package-local phase chain for every package". Work is distributed
// dynamically (an atomic next-package counter), which is safe for bit-exact
// determinism because package phases write only their own SimulationState
// shard - *which* worker runs a package never affects *what* it computes,
// and every cross-package reduction the engine performs afterwards walks the
// per-package results in package order on the calling thread.
//
// The calling thread participates as worker 0, so a pool built with
// `workers == 1` spawns no threads at all and Run degenerates to the plain
// sequential loop - that is what makes intra_run_threads=1 exactly "the
// sharded pipeline, serially".

#ifndef SRC_SIM_PACKAGE_WORKER_POOL_H_
#define SRC_SIM_PACKAGE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eas {

class PackageWorkerPool {
 public:
  // The per-item job: fn(item, worker). `worker` is in [0, num_workers());
  // the same worker index is never live on two threads at once, so it can
  // index per-worker scratch.
  using Job = std::function<void(std::size_t item, std::size_t worker)>;

  // Spawns `workers - 1` helper threads (the caller is worker 0). `workers`
  // is clamped to at least 1.
  explicit PackageWorkerPool(std::size_t workers);
  ~PackageWorkerPool();

  PackageWorkerPool(const PackageWorkerPool&) = delete;
  PackageWorkerPool& operator=(const PackageWorkerPool&) = delete;

  std::size_t num_workers() const { return num_workers_; }

  // Runs fn(item, worker) once for every item in [0, items), concurrently
  // across the workers, and returns when all calls have completed. fn must
  // be safe to call concurrently for distinct items. Not reentrant.
  void Run(std::size_t items, const Job& fn);

 private:
  void WorkerLoop(std::size_t worker);
  // Claims items off next_item_ until the job is exhausted.
  void DrainItems(const Job& fn, std::size_t worker);

  std::size_t num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const Job* job_ = nullptr;       // guarded by mutex_ at hand-off
  std::size_t job_items_ = 0;      // guarded by mutex_ at hand-off
  std::uint64_t generation_ = 0;   // bumped per Run; wakes the helpers
  std::size_t busy_helpers_ = 0;   // helpers still draining this generation
  bool shutdown_ = false;

  std::atomic<std::size_t> next_item_{0};
};

}  // namespace eas

#endif  // SRC_SIM_PACKAGE_WORKER_POOL_H_
