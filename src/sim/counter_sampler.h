// Counter-sampling phase (paper Section 3.2).
//
// Consumes the counter events the scheduler tick produced: accumulates them
// into the per-CPU counter blocks, runs the calibrated estimator to
// attribute per-tick energy to the running tasks and the thermal-power
// metric, credits halt power to inactive siblings, and sums the package's
// *true* dynamic energy for the thermal model.

#ifndef SRC_SIM_COUNTER_SAMPLER_H_
#define SRC_SIM_COUNTER_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/annotations.h"
#include "src/counters/event_types.h"
#include "src/sim/simulation_state.h"

namespace eas {

class CounterSampler {
 public:
  // Processes one executed tick of `physical`. `events[i]` are the counter
  // events of `active[i]`. Returns the package's true dynamic energy (J).
  EAS_SHARD_LOCAL double Sample(SimulationState& state, std::size_t physical,
                                const std::vector<int>& active,
                                const std::vector<EventVector>& events);

 private:
  // Reusable per-logical-CPU active mask: replaces the O(active x siblings)
  // membership scan when crediting halt power to inactive siblings. Only the
  // bits set for this call are touched, and they are cleared before
  // returning, so the mask stays all-zero between calls.
  std::vector<std::uint8_t> active_mask_;
};

}  // namespace eas

#endif  // SRC_SIM_COUNTER_SAMPLER_H_
