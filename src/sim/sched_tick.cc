#include "src/sim/sched_tick.h"

namespace eas {

void SchedTick::SpawnArrivals(SimulationState& state) const {
  TickEventQueue<SimulationState::PendingArrival>& queue = state.arrival_queue();
  while (queue.PeekReady(state.now()) != nullptr) {
    const auto entry = queue.Pop();
    state.Spawn(*entry.payload.program, entry.payload.nice);
  }
}

void SchedTick::WakeSleepers(SimulationState& state) const {
  TickEventQueue<Task*>& queue = state.wake_queue();
  while (const auto* ready = queue.PeekReady(state.now())) {
    Task* task = ready->payload;
    const Tick wake_tick = ready->tick;
    queue.Pop();
    // A stale entry - the task was woken by other means and re-slept with a
    // different wake tick - must not fire; the re-sleep pushed its own entry.
    if (task->state() != TaskState::kSleeping || task->wake_tick() != wake_tick) {
      continue;
    }
    // Wake on the CPU the task last ran on (affinity) - unless a fault took
    // it offline while the task slept, in which case the wake redirects to
    // the least-loaded online CPU (Enqueue* rewrites task->cpu()).
    int cpu = task->cpu();
    if (!state.CpuOnline(cpu)) {
      cpu = state.PickOnlineFallback(cpu);
    }
    state.runqueue(cpu).EnqueueFront(task);
  }
}

void SchedTick::SwitchInPackage(SimulationState& state, std::size_t physical) const {
  const std::size_t siblings = state.config().topology.smt_per_physical();
  for (std::size_t t = 0; t < siblings; ++t) {
    state.SwitchInIfIdle(state.config().topology.LogicalId(physical, t));
  }
}

void SchedTick::SelectActive(const SimulationState& state, std::size_t physical, bool throttled,
                             std::vector<int>& active) const {
  active.clear();
  if (throttled) {
    return;
  }
  const std::size_t siblings = state.config().topology.smt_per_physical();
  for (std::size_t t = 0; t < siblings; ++t) {
    const int cpu = state.config().topology.LogicalId(physical, t);
    if (state.runqueue(cpu).current() != nullptr) {
      active.push_back(cpu);
    }
  }
}

void SchedTick::ExecuteActive(SimulationState& state, const std::vector<int>& active,
                              std::vector<EventVector>& events,
                              double frequency_multiplier) const {
  const MachineConfig& config = state.config();
  const double corun_speed =
      (active.size() >= 2 ? config.smt_corun_speed : 1.0) * frequency_multiplier;
  events.resize(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    Task* task = state.runqueue(active[i]).current();
    double speed = corun_speed;
    if (task->warmup_ticks_left() > 0) {
      speed *= config.warmup_speed;
    }
    events[i] = task->ExecuteTick(speed);
    task->AccountActiveTick();
    task->TickTimeslice();
  }
}

void SchedTick::HandleLifecycle(SimulationState& state, int cpu) const {
  const MachineConfig& config = state.config();
  Runqueue& rq = state.runqueue(cpu);
  Task* task = rq.current();
  if (task == nullptr) {
    return;
  }

  // Blocking (the task called a blocking syscall at the end of a burst).
  const Tick sleep = task->TakePendingSleep();
  if (sleep > 0) {
    state.CommitPeriod(*task);
    rq.TakeCurrent();
    state.StartSleep(*task, sleep);
    return;
  }

  // Work completion.
  if (task->WorkComplete()) {
    state.CommitPeriod(*task);
    if (config.respawn_completed) {
      task->RestartProgram();
      // A respawned task models a fresh process of the same binary: it goes
      // through placement again, seeded from the registry.
      rq.TakeCurrent();
      const int cpu_new = state.PlaceTask(*task);
      task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config.timeslice_ticks));
      state.runqueue(cpu_new).Enqueue(task);
    } else {
      rq.TakeCurrent();
      task->set_state(TaskState::kFinished);
    }
    return;
  }

  // Timeslice expiry: rotate within the local queue.
  if (task->timeslice_left() <= 0) {
    state.CommitPeriod(*task);
    task->set_timeslice_left(Task::TimesliceForNice(task->nice(), config.timeslice_ticks));
    if (rq.nr_queued() > 0) {
      rq.TakeCurrent();
      rq.Enqueue(task);
    }
    // Alone on the queue: keep running; the period was still committed so
    // the profile and registry stay fresh.
  }
}

}  // namespace eas
