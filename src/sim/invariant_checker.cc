#include "src/sim/invariant_checker.h"

#include <cmath>
#include <stdexcept>

namespace eas {

InvariantChecker::InvariantChecker(const SimulationState& state)
    : offline_ticks_baseline_(state.offline_cpu_ticks()) {
  if (state.config().governed()) {
    residency_baseline_.reserve(state.num_physical());
    for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
      residency_baseline_.push_back(state.freq_domain(phys).total_ticks());
    }
  }
}

void InvariantChecker::Violate(const SimulationState& state, const std::string& what) const {
  throw std::runtime_error("invariant violated at tick " + std::to_string(state.now()) + ": " +
                           what);
}

void InvariantChecker::OnTick(const SimulationState& state) {
  ++ticks_checked_;

  // Task conservation sweep: every queue member belongs to its queue, no
  // task is double-counted, and the per-queue totals match the sharded
  // counter the skip-ahead planner trusts.
  seen_.assign(state.tasks().size() + 1, 0);
  std::int64_t members = 0;
  std::int64_t nr_running_sum = 0;
  for (std::size_t i = 0; i < state.num_cpus(); ++i) {
    const int cpu = static_cast<int>(i);
    const Runqueue& rq = state.runqueue(cpu);
    nr_running_sum += static_cast<std::int64_t>(rq.nr_running());
    if (!state.CpuOnline(cpu) && rq.nr_running() != 0) {
      Violate(state, "offline cpu " + std::to_string(cpu) + " holds " +
                         std::to_string(rq.nr_running()) + " task(s)");
    }
    auto check_member = [&](const Task* task, bool running) {
      if (task->cpu() != cpu) {
        Violate(state, "task " + std::to_string(task->id()) + " on cpu " + std::to_string(cpu) +
                           "'s queue but task->cpu() says " + std::to_string(task->cpu()));
      }
      const TaskState expected = running ? TaskState::kRunning : TaskState::kRunnable;
      if (task->state() != expected) {
        Violate(state, "task " + std::to_string(task->id()) + " on cpu " + std::to_string(cpu) +
                           " in wrong state");
      }
      std::uint8_t& mark = seen_[static_cast<std::size_t>(task->id())];
      if (mark != 0) {
        Violate(state, "task " + std::to_string(task->id()) + " double-counted (second sighting on cpu " +
                           std::to_string(cpu) + ")");
      }
      mark = 1;
      ++members;
    };
    if (rq.current() != nullptr) {
      check_member(rq.current(), /*running=*/true);
    }
    for (const Task* task : rq.queued()) {
      check_member(task, /*running=*/false);
    }
  }
  if (nr_running_sum != state.total_runnable()) {
    Violate(state, "sum of nr_running (" + std::to_string(nr_running_sum) +
                       ") != sharded total_runnable (" + std::to_string(state.total_runnable()) +
                       ")");
  }

  // Reverse direction: every task the table says occupies a CPU must have
  // been found on a queue - a task neither queued, running, sleeping nor
  // finished has been lost.
  std::int64_t expected_members = 0;
  for (const Task* task : state.tasks()) {
    if (SimulationState::TaskCpu(*task) != kInvalidCpu) {
      ++expected_members;
    }
  }
  if (expected_members != members) {
    Violate(state, std::to_string(expected_members - members) + " task(s) lost (" +
                       std::to_string(expected_members) + " claim a cpu, " +
                       std::to_string(members) + " found on queues)");
  }

  // Offline ledger: the state appends the live offline count once per tick;
  // the checker accumulates the same quantity independently.
  offline_ticks_accumulated_ += state.offline_cpu_count();
  if (state.offline_cpu_ticks() - offline_ticks_baseline_ != offline_ticks_accumulated_) {
    Violate(state, "offline-cpu tick ledger out of balance (state " +
                       std::to_string(state.offline_cpu_ticks() - offline_ticks_baseline_) +
                       ", observed " + std::to_string(offline_ticks_accumulated_) + ")");
  }

  // Residency accounting balances across fault windows: a governed package
  // accounts exactly one residency tick per tick, emergencies and clamps
  // included.
  if (state.config().governed()) {
    for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
      if (state.freq_domain(phys).total_ticks() - residency_baseline_[phys] != ticks_checked_) {
        Violate(state, "package " + std::to_string(phys) + " residency total drifted");
      }
    }
  }

  // Physics sanity: chaos must never drive the models out of their domain.
  for (std::size_t phys = 0; phys < state.num_physical(); ++phys) {
    const double power = state.TruePower(phys);
    const double temp = state.shard(phys).thermal.temperature();
    if (!std::isfinite(power) || power < 0.0) {
      Violate(state, "package " + std::to_string(phys) + " true power " + std::to_string(power));
    }
    if (!std::isfinite(temp)) {
      Violate(state, "package " + std::to_string(phys) + " temperature not finite");
    }
  }
}

}  // namespace eas
