#include "src/sim/scenario.h"

#include <stdexcept>
#include <utility>

namespace eas {

ExperimentSpec ScenarioSpec::ToExperimentSpec() const {
  ExperimentSpec spec;
  spec.name = name;
  spec.config = config;
  spec.options = options;
  spec.workload = workload;
  return spec;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

bool ScenarioRegistry::Register(const std::string& name, const std::string& description,
                                Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.emplace(name, std::make_pair(description, std::move(factory))).second;
}

ScenarioSpec ScenarioRegistry::BuildOrThrow(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it != factories_.end()) {
      factory = it->second.second;
    }
  }
  if (factory == nullptr) {
    std::string known;
    for (const std::string& candidate : Names()) {
      known += known.empty() ? candidate : ", " + candidate;
    }
    throw std::invalid_argument("unknown scenario \"" + name + "\" (known: " + known + ")");
  }
  ScenarioSpec spec = factory();
  spec.name = name;
  return spec;
}

bool ScenarioRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::vector<ScenarioRegistry::Info> ScenarioRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Info> infos;
  infos.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) {
    infos.push_back(Info{name, entry.first});
  }
  return infos;
}

}  // namespace eas
