#include "src/sim/thermal_stepper.h"

namespace eas {

void ThermalStepper::StepPackage(SimulationState& state, std::size_t physical,
                                 std::size_t active_count, double true_dynamic) const {
  const EnergyModel& model = state.config().model;
  const double n_active = static_cast<double>(active_count);
  const double n_total = static_cast<double>(state.config().topology.smt_per_physical());
  double static_true;
  if (state.config().faulted()) {
    // Offlined siblings are powered down: only the online share of the
    // package draws halt power. With every sibling online n_online == n_total
    // and the idle term's ratio is exactly 1.0, reproducing the fault-free
    // expression bit for bit (x/x == 1.0 for finite nonzero x).
    const double n_online = static_cast<double>(state.online_siblings(physical));
    static_true =
        active_count == 0
            ? model.halt_power() * (n_online / n_total)
            : model.active_base_power() * (n_active / n_total) +
                  model.halt_power() * ((n_online - n_active) / n_total);
  } else {
    static_true =
        active_count == 0
            ? model.halt_power()
            : model.active_base_power() * (n_active / n_total) +
                  model.halt_power() * ((n_total - n_active) / n_total);
  }
  const double true_power = static_true + true_dynamic / kTickSeconds;
  state.set_true_power(physical, true_power);
  state.thermal(physical).Step(true_power, kTickSeconds);
}

}  // namespace eas
