// Machine configuration: topology, thermal, energy model, policy switches.

#ifndef SRC_SIM_MACHINE_CONFIG_H_
#define SRC_SIM_MACHINE_CONFIG_H_

#include <cstdint>
#include <optional>

#include <string>

#include "src/core/energy_sched_config.h"
#include "src/counters/energy_model.h"
#include "src/task/energy_profile.h"
#include "src/thermal/cooling_profile.h"
#include "src/topo/cpu_topology.h"
#include "src/topo/frequency_domain.h"

namespace eas {

struct MachineConfig {
  CpuTopology topology = CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  CoolingProfile cooling = CoolingProfile::PaperXSeries445();
  EnergyModel model = EnergyModel::Default();

  // Calibrated estimator weights. If unset, the machine calibrates on
  // construction (the realistic path); tests can inject oracle weights.
  std::optional<EventWeights> estimator_weights;
  double meter_error_stddev = 0.02;

  // Maximum power assignment per *physical* package:
  //  - explicit_max_power_physical set: the experiment dictates it (e.g.
  //    Section 6.1 sets 60 W, Section 6.4 sets 40 W);
  //  - otherwise: derived from `temp_limit` and each package's cooling
  //    (Section 6.2's per-CPU calibration), P_max = (T_limit - T_amb) / R.
  std::optional<double> explicit_max_power_physical;
  double temp_limit = 38.0;

  // Whether thermal throttling is enforced (Sections 6.2/6.4) or only
  // observed (Section 6.1 plots the would-be limit).
  bool throttling_enabled = false;
  double throttle_hysteresis_watts = 0.5;

  // DVFS (the competing power-capping mechanism the paper positions hlt
  // throttling against): the per-package P-state ladder and the frequency
  // governor driving it, selected by name through the
  // FrequencyGovernorRegistry (src/freq). "none" pins every package at P0
  // and the engine skips the frequency phase entirely, so such a machine is
  // bit-identical to one predating the frequency layer.
  PStateTable pstates = PStateTable::Default();
  std::string frequency_governor = "none";

  // Whether a real governor drives the P-states. The single source of truth
  // for every "skip the frequency machinery" special case (engine phase,
  // traces, result columns) - they must all agree for the ungoverned
  // bit-identity guarantee to hold.
  bool governed() const { return frequency_governor != "none"; }

  // Seeded fault-injection plan (src/fault/fault_plan.h grammar), parsed by
  // the SimulationState constructor; empty = no fault layer. Mirrors
  // governed(): the single source of truth for every "skip the fault
  // machinery" special case (engine phase, skip-ahead gating, invariant
  // checker, result columns), so a fault-free run is bit-identical to one
  // predating the fault layer.
  std::string fault_spec;
  bool faulted() const { return !fault_spec.empty(); }

  // Scheduling policy switches (the paper's contribution vs baseline).
  EnergySchedConfig sched = EnergySchedConfig::EnergyAware();

  Tick timeslice_ticks = kDefaultTimesliceTicks;

  // Exponential-average weight of a task's energy profile for one standard
  // timeslice (Equation 2's p). The ablation bench sweeps this.
  double profile_sample_weight = EnergyProfile::kDefaultSampleWeight;

  // SMT co-run slowdown: per-thread speed when both siblings execute.
  double smt_corun_speed = 0.65;

  // Cache-warmup penalty after a migration: the task runs at `warmup_speed`
  // for this many ticks (longer if the migration crossed a node).
  Tick warmup_ticks_same_node = 3;
  Tick warmup_ticks_cross_node = 12;
  double warmup_speed = 0.5;

  // Completed tasks restart their program (throughput accounting).
  bool respawn_completed = true;

  // Closed-form skip-ahead over quiescent spans: when every runqueue is
  // empty and the balancing policy guarantees idle passes are no-ops, the
  // engine advances to the next interesting tick (wake, arrival, accounting
  // sample) through a reduced kernel that reproduces the naive tick's state
  // updates bit-identically. The RunRequest key `skip-ahead` / eastool's
  // --no-skip-ahead flips this for A/B timing; results are identical either
  // way, only wall-clock changes.
  bool skip_ahead = true;

  // Intra-run worker threads for the package-parallel tick pipeline.
  //  - 0 (default): the historical interleaved per-package loop, every
  //    package's phases and lifecycle before the next package's - the
  //    bit-exact seed behaviour every golden capture was taken against.
  //  - >= 1: the sharded pipeline - all packages run their package-local
  //    phases (gate, governor, switch-in, execute, sample, thermal step)
  //    over `min(intra_run_threads, packages)` workers, then task lifecycle
  //    runs sequentially in package order. Results are bit-identical for
  //    every worker count >= 1 (package phases only touch their own
  //    SimulationState shard; the reductions run in package order), but the
  //    phase ordering across packages differs from mode 0, so the two modes
  //    are distinct deterministic machines.
  std::size_t intra_run_threads = 0;

  std::uint64_t seed = 42;
};

}  // namespace eas

#endif  // SRC_SIM_MACHINE_CONFIG_H_
