// The built-in scenario catalogue: the paper's evaluation workloads plus
// stressors the paper could not run (open-loop arrivals, mid-run event-mix
// shifts, trace replay). Every factory builds a self-contained ScenarioSpec:
// the workload retains the ProgramLibrary its arrival pointers reach into,
// so specs survive copying into parallel sweeps.

#include <memory>

#include "src/sim/scenario.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"
#include "src/workloads/workload_builder.h"

namespace eas {
namespace {

// The paper's machine: 2-node x 4-way xSeries 445, SMT off, measured cooling.
MachineConfig PaperMachine() {
  MachineConfig config;
  config.topology = CpuTopology::PaperXSeries445(/*smt_enabled=*/false);
  config.cooling = CoolingProfile::PaperXSeries445();
  return config;
}

// Builds a library against `config`'s energy model and hands ownership to
// whatever workload the caller derives from it.
std::shared_ptr<const ProgramLibrary> MakeLibrary(const MachineConfig& config) {
  return std::make_shared<ProgramLibrary>(config.model);
}

ScenarioSpec PaperMixed() {
  ScenarioSpec spec;
  spec.description = "Section 6.1: 18-task mixed Table 2 workload, 60 W cap, energy-aware";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  spec.workload = Workload(MixedWorkload(*library, 3));
  spec.workload.Retain(library);
  return spec;
}

ScenarioSpec PaperHomogeneous() {
  ScenarioSpec spec;
  spec.description = "Figure 8: memrw/pushpop/bitcnts homogeneity mix, 60 W cap";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  spec.workload = Workload(HomogeneityWorkload(*library, 4, 4, 4));
  spec.workload.Retain(library);
  return spec;
}

ScenarioSpec PaperHotTask() {
  ScenarioSpec spec;
  spec.description = "Figures 9/10: bitcnts hot tasks under 40 W throttling";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 40.0;
  spec.config.throttling_enabled = true;
  auto library = MakeLibrary(spec.config);
  spec.workload = Workload(HotTaskWorkload(*library, 4));
  spec.workload.Retain(library);
  spec.options.record_task_cpu = true;
  return spec;
}

ScenarioSpec ShortTasks() {
  ScenarioSpec spec;
  spec.description = "Section 6.2: churning short hot/cool tasks, stresses initial placement";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  Workload workload;
  for (int i = 0; i < 24; ++i) {
    workload.Add(i % 2 == 0 ? library->short_hot() : library->short_cool());
  }
  workload.Retain(library);
  spec.workload = std::move(workload);
  return spec;
}

ScenarioSpec PhaseShift() {
  ScenarioSpec spec;
  spec.description = "Stressor: 8 tasks flip ALU-hot <-> mem-cool mix every 30 s";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  PhaseShiftOptions options;
  options.tasks = 8;
  spec.workload = PhaseShiftWorkload(spec.config.model, options);
  return spec;
}

ScenarioSpec PoissonOpenLoop() {
  ScenarioSpec spec;
  spec.description = "Stressor: open-loop Poisson arrivals (2/s) of the Table 2 mix";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  PoissonOptions options;
  options.arrivals_per_second = 2.0;
  options.horizon_ticks = spec.options.duration_ticks;
  options.initial_tasks = 8;
  options.seed = 7;
  spec.workload = PoissonWorkload(library->Table2Programs(), options);
  spec.workload.Retain(library);
  return spec;
}

ScenarioSpec ServerConsolidation() {
  ScenarioSpec spec;
  spec.description =
      "Scale stressor: 150+ mostly-sleeping service daemons ramp up over a cool batch floor";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  Workload workload;
  // A consolidation host: a cool always-on batch floor, then a ramp of
  // interactive daemons (sshd/bash sleep most of the time) arriving through
  // the event queue. The task population dwarfs the CPU count, so the
  // scenario exercises exactly what the tick hot path must not do - per-tick
  // work proportional to every task ever spawned.
  for (int i = 0; i < 8; ++i) {
    workload.Add(library->memrw());
  }
  for (int i = 0; i < 104; ++i) {
    workload.Add(library->sshd(), /*tick=*/static_cast<Tick>(i) * 180);
  }
  for (int i = 0; i < 48; ++i) {
    workload.Add(library->bash(), /*tick=*/static_cast<Tick>(i) * 390);
  }
  workload.Retain(library);
  spec.workload = std::move(workload);
  spec.options.duration_ticks = 120'000;
  return spec;
}

ScenarioSpec DatacenterConsolidation() {
  ScenarioSpec spec;
  spec.description =
      "Cluster stressor: 512-CPU five-level topology (256 packages), ~16k mostly-sleeping "
      "daemons over a batch floor";
  // A consolidation *cluster*, not a host: 2 racks x 4 boards x 8 nodes x
  // 4 packages x 2 SMT = 512 logical CPUs under a five-level domain tree.
  // This is the scale target the level-list topology, the per-domain
  // aggregate rollups and the sharded tick pipeline exist for; run it with
  // --intra-threads N to fan the package phases across workers.
  spec.config.topology = CpuTopology({{"rack", 2},
                                      {"board", 4},
                                      {"node", 8},
                                      {"package", 4},
                                      {"smt", 2}});
  spec.config.cooling =
      CoolingProfile::Uniform(spec.config.topology.num_physical(), ThermalParams{});
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  Workload workload;
  // A cool batch floor keeps three quarters of the boards busy for the whole
  // run; the daemon population (sshd/bash sleep most of the time) ramps in
  // through the arrival queue, spread evenly over the first 16 s. The task
  // population is ~32x the CPU count, so per-tick cost must scale with the
  // work due, and the balance walk with the domain fanout - not with either
  // population.
  for (int i = 0; i < 192; ++i) {
    workload.Add(library->memrw());
  }
  constexpr int kSshd = 12'288;
  for (int i = 0; i < kSshd; ++i) {
    workload.Add(library->sshd(),
                 /*tick=*/static_cast<Tick>(i) * 16'000 / kSshd);
  }
  constexpr int kBash = 4'096;
  for (int i = 0; i < kBash; ++i) {
    workload.Add(library->bash(),
                 /*tick=*/static_cast<Tick>(i) * 16'000 / kBash);
  }
  workload.Retain(library);
  spec.workload = std::move(workload);
  spec.options.duration_ticks = 20'000;
  return spec;
}

ScenarioSpec DvfsVsThrottle() {
  ScenarioSpec spec;
  spec.description =
      "DVFS half of the capping comparison: paper-hot-task's 40 W cap enforced by the "
      "thermal-stepdown governor instead of hlt";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 40.0;
  // The cap is enforced purely by frequency scaling: hlt throttling off,
  // the governor steps P-states against the same 40 W budget. Run
  // paper-hot-task (same workload, hlt on, governor none) next to this for
  // the paper's "frequency scaling vs halting" comparison in one command
  // each.
  spec.config.throttling_enabled = false;
  spec.config.frequency_governor = "thermal-stepdown";
  auto library = MakeLibrary(spec.config);
  spec.workload = Workload(HotTaskWorkload(*library, 4));
  spec.workload.Retain(library);
  spec.options.record_task_cpu = true;
  return spec;
}

ScenarioSpec GovernorComparison() {
  ScenarioSpec spec;
  spec.description =
      "Governor proving ground: bursty mixed workload under a 40 W cap with hlt backstop; "
      "sweep --governor across none/thermal-stepdown/ondemand";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 40.0;
  // hlt throttling stays armed as the backstop, so --governor none is the
  // paper's pure-hlt baseline and any governor shows how much halting it
  // avoids. The mix alternates hot compute with sleepy daemons to give the
  // utilization-driven governor real idle troughs to react to.
  spec.config.throttling_enabled = true;
  spec.config.frequency_governor = "ondemand";
  auto library = MakeLibrary(spec.config);
  Workload workload;
  for (int i = 0; i < 6; ++i) {
    workload.Add(library->bitcnts());
  }
  for (int i = 0; i < 4; ++i) {
    workload.Add(library->memrw());
  }
  for (int i = 0; i < 24; ++i) {
    workload.Add(library->sshd(), /*tick=*/static_cast<Tick>(i) * 500);
  }
  workload.Retain(library);
  spec.workload = std::move(workload);
  spec.options.duration_ticks = 240'000;
  return spec;
}

ScenarioSpec ChaosSoak() {
  ScenarioSpec spec;
  spec.description =
      "Chaos soak: SMT paper box under a dense seeded fault plan (hotplug churn, thermal "
      "spikes, P-state clamps) with the invariant checker armed every tick";
  spec.config = PaperMachine();
  // SMT on: hotplug must cope with sibling pairs sharing a package, not just
  // one logical CPU per core.
  spec.config.topology = CpuTopology::PaperXSeries445(/*smt_enabled=*/true);
  spec.config.explicit_max_power_physical = 60.0;
  spec.config.frequency_governor = "thermal-stepdown";
  // The plan layers every fault kind: a 10-pair churn schedule expanded from
  // its own seed, two thermal emergencies, two clamp windows, and one
  // hand-placed hotplug pair on each node. Deterministic by construction -
  // the schedule is a function of this string alone.
  spec.config.fault_spec =
      "churn:10@50000:1337,spike:0@6000:12:2500,spike:5@20000:9:2000,"
      "clamp:2@10000:3:6000,clamp:6@30000:2:5000,off:3@4000,on:3@16000,"
      "off:11@24000,on:11@36000";
  auto library = MakeLibrary(spec.config);
  Workload workload;
  workload = Workload(MixedWorkload(*library, 2));
  for (int i = 0; i < 16; ++i) {
    workload.Add(library->sshd(), /*tick=*/static_cast<Tick>(i) * 700);
  }
  workload.Retain(library);
  spec.workload = std::move(workload);
  spec.options.duration_ticks = 60'000;
  return spec;
}

ScenarioSpec TraceReplay() {
  ScenarioSpec spec;
  spec.description = "Trace playback: staged bitcnts burst over a memrw floor";
  spec.config = PaperMachine();
  spec.config.explicit_max_power_physical = 60.0;
  auto library = MakeLibrary(spec.config);
  // A hand-written arrival schedule: a cool floor at start, then a hot
  // burst arriving mid-run in two waves, exercising TraceWorkload end to
  // end (the same parser `eastool --workload trace:FILE` uses).
  static constexpr char kTrace[] =
      "tick,program,nice\n"
      "0,memrw,0\n"
      "0,memrw,0\n"
      "0,pushpop,0\n"
      "0,pushpop,0\n"
      "60000,bitcnts,0\n"
      "60000,bitcnts,0\n"
      "120000,bitcnts,0\n"
      "120000,bitcnts,0\n"
      "180000,openssl,0\n"
      "240000,bzip2,0\n";
  Workload workload;
  std::string error;
  // The built-in trace is a compile-time constant; parsing cannot fail.
  (void)ParseTraceWorkload(kTrace, *library, &workload, &error);
  workload.Retain(library);
  spec.workload = std::move(workload);
  return spec;
}

}  // namespace

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  registry.Register("paper-mixed",
                    "Section 6.1: 18-task mixed Table 2 workload, 60 W cap, energy-aware",
                    PaperMixed);
  registry.Register("paper-homogeneous",
                    "Figure 8: memrw/pushpop/bitcnts homogeneity mix, 60 W cap",
                    PaperHomogeneous);
  registry.Register("paper-hot-task", "Figures 9/10: bitcnts hot tasks under 40 W throttling",
                    PaperHotTask);
  registry.Register("short-tasks",
                    "Section 6.2: churning short hot/cool tasks, stresses initial placement",
                    ShortTasks);
  registry.Register("phase-shift", "Stressor: 8 tasks flip ALU-hot <-> mem-cool mix every 30 s",
                    PhaseShift);
  registry.Register("poisson-open-loop",
                    "Stressor: open-loop Poisson arrivals (2/s) of the Table 2 mix",
                    PoissonOpenLoop);
  registry.Register(
      "server-consolidation",
      "Scale stressor: 150+ mostly-sleeping service daemons ramp up over a cool batch floor",
      ServerConsolidation);
  registry.Register("trace-replay", "Trace playback: staged bitcnts burst over a memrw floor",
                    TraceReplay);
  registry.Register("datacenter-consolidation",
                    "Cluster stressor: 512-CPU five-level topology (256 packages), ~16k "
                    "mostly-sleeping daemons over a batch floor",
                    DatacenterConsolidation);
  registry.Register("dvfs-vs-throttle",
                    "DVFS half of the capping comparison: paper-hot-task's 40 W cap enforced "
                    "by the thermal-stepdown governor instead of hlt",
                    DvfsVsThrottle);
  registry.Register("governor-comparison",
                    "Governor proving ground: bursty mixed workload under a 40 W cap with hlt "
                    "backstop; sweep --governor across none/thermal-stepdown/ondemand",
                    GovernorComparison);
  registry.Register("chaos-soak",
                    "Chaos soak: SMT paper box under a dense seeded fault plan (hotplug churn, "
                    "thermal spikes, P-state clamps) with the invariant checker armed every tick",
                    ChaosSoak);
}

}  // namespace eas
