#include "src/counters/energy_model.h"

#include <cassert>

namespace eas {

EnergyModel EnergyModel::Default() {
  // Joules per kilo-event. Memory-bound work costs more energy per event but
  // sustains far lower event rates, reproducing the paper's observation that
  // memory-bound tasks (memrw, 38 W) run cooler than ALU-bound ones
  // (bitcnts, 61 W).
  EventWeights weights{};
  weights[EventIndex(EventType::kUopsRetired)] = 8e-6;
  weights[EventIndex(EventType::kIntAluOps)] = 10e-6;
  weights[EventIndex(EventType::kFpuOps)] = 25e-6;
  weights[EventIndex(EventType::kMemTransactions)] = 30e-6;
  weights[EventIndex(EventType::kL2CacheMisses)] = 45e-6;
  weights[EventIndex(EventType::kStackOps)] = 6e-6;
  return EnergyModel(weights, /*active_base_power_watts=*/18.0, /*halt_power_watts=*/13.6);
}

EnergyModel::EnergyModel(const EventWeights& weights, double active_base_power_watts,
                         double halt_power_watts)
    : weights_(weights),
      active_base_power_watts_(active_base_power_watts),
      halt_power_watts_(halt_power_watts) {}

double EnergyModel::DynamicEnergy(const EventVector& events) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    energy += weights_[i] * events[i];
  }
  return energy;
}

double EnergyModel::NominalDynamicPower(const EventRates& rates) const {
  return DynamicEnergy(rates) / kTickSeconds;
}

double EnergyModel::NominalTotalPower(const EventRates& rates) const {
  return active_base_power_watts_ + NominalDynamicPower(rates);
}

EventRates EnergyModel::RatesForTargetPower(const EventRates& signature,
                                            double target_power_watts) const {
  const double dynamic_target = target_power_watts - active_base_power_watts_;
  assert(dynamic_target >= 0.0);
  const double signature_power = NominalDynamicPower(signature);
  assert(signature_power > 0.0);
  const double scale = dynamic_target / signature_power;
  EventRates rates{};
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    rates[i] = signature[i] * scale;
  }
  return rates;
}

}  // namespace eas
