#include "src/counters/energy_estimator.h"

#include <cassert>

namespace eas {

EnergyEstimator::EnergyEstimator(const EventWeights& weights,
                                 double static_power_per_logical_watts)
    : weights_(weights), static_power_per_logical_watts_(static_power_per_logical_watts) {}

EnergyEstimator EnergyEstimator::Oracle(const EnergyModel& model, std::size_t smt_siblings) {
  assert(smt_siblings >= 1);
  return EnergyEstimator(model.weights(),
                         model.active_base_power() / static_cast<double>(smt_siblings));
}

double EnergyEstimator::EstimateDynamicEnergy(const EventVector& counter_diff) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    energy += weights_[i] * counter_diff[i];
  }
  return energy;
}

double EnergyEstimator::EstimateEnergy(const EventVector& counter_diff, Tick active_ticks) const {
  return EstimateDynamicEnergy(counter_diff) +
         static_power_per_logical_watts_ * TicksToSeconds(active_ticks);
}

double EnergyEstimator::EstimatePower(const EventVector& counter_diff, Tick active_ticks) const {
  if (active_ticks <= 0) {
    // Counters only advance while executing, so a nonzero diff with no
    // accounted active time means the tick accounting under-resolved a real
    // execution period. Attribute the dynamic energy to the minimum
    // accountable period (one tick) instead of silently reporting 0 W; a
    // zero diff genuinely means no execution and stays 0 W.
    if (EstimateDynamicEnergy(counter_diff) == 0.0) {
      return 0.0;
    }
    active_ticks = 1;
  }
  return EstimateEnergy(counter_diff, active_ticks) / TicksToSeconds(active_ticks);
}

}  // namespace eas
