// Per logical CPU event monitoring counter block.
//
// Mirrors the way the kernel implementation reads hardware counters: counters
// accumulate monotonically while the CPU executes; the energy accounting code
// snapshots them at the beginning and end of every accounting period (task
// switch / end of timeslice) and works with the differences (Section 3.2).

#ifndef SRC_COUNTERS_COUNTER_BLOCK_H_
#define SRC_COUNTERS_COUNTER_BLOCK_H_

#include "src/counters/event_types.h"

namespace eas {

class CounterBlock {
 public:
  // Accumulates the events of one execution period onto the counters.
  void Accumulate(const EventVector& events);

  // Returns the current (monotonic) counter values.
  const EventVector& values() const { return values_; }

  // Snapshot-and-diff helper: returns values() - `since` per component.
  EventVector DiffSince(const EventVector& since) const;

  // Resets all counters to zero (only used by tests; real accounting never
  // resets, it diffs snapshots).
  void Reset();

 private:
  EventVector values_{};
};

}  // namespace eas

#endif  // SRC_COUNTERS_COUNTER_BLOCK_H_
