#include "src/counters/power_meter.h"

namespace eas {

PowerMeter::PowerMeter(std::uint64_t seed, double relative_error_stddev)
    : rng_(seed), relative_error_stddev_(relative_error_stddev) {}

double PowerMeter::MeasureEnergy(double true_energy_joules) {
  return true_energy_joules * (1.0 + rng_.Gaussian(0.0, relative_error_stddev_));
}

}  // namespace eas
