// Event monitoring counter event classes.
//
// The Pentium 4 exposes dozens of countable events; the energy estimation
// work the paper builds on (Bellosa et al., COLP'03) picks a small set that
// can be counted simultaneously and correlates with power. We model six
// synthetic event classes with the same flavour. Each running task emits
// events of each class at per-phase rates; the "silicon" charges a fixed
// energy per event (EnergyModel), and the estimator reconstructs energy from
// the counts with calibrated weights.

#ifndef SRC_COUNTERS_EVENT_TYPES_H_
#define SRC_COUNTERS_EVENT_TYPES_H_

#include <array>
#include <cstddef>
#include <string_view>

namespace eas {

enum class EventType : std::size_t {
  kUopsRetired = 0,      // decoded micro-operations retired
  kIntAluOps,            // integer ALU operations
  kFpuOps,               // floating point operations
  kMemTransactions,      // bus/memory transactions
  kL2CacheMisses,        // L2 misses (subset of memory transactions)
  kStackOps,             // load/store to the stack (push/pop heavy code)
};

inline constexpr std::size_t kNumEventTypes = 6;

constexpr std::size_t EventIndex(EventType e) { return static_cast<std::size_t>(e); }

constexpr std::string_view EventName(EventType e) {
  switch (e) {
    case EventType::kUopsRetired:
      return "uops_retired";
    case EventType::kIntAluOps:
      return "int_alu_ops";
    case EventType::kFpuOps:
      return "fpu_ops";
    case EventType::kMemTransactions:
      return "mem_transactions";
    case EventType::kL2CacheMisses:
      return "l2_cache_misses";
    case EventType::kStackOps:
      return "stack_ops";
  }
  return "unknown";
}

// Events emitted during one tick (or any accounting period), in thousands of
// events ("kilo-events"); double-valued because rates are scaled and noised.
using EventVector = std::array<double, kNumEventTypes>;

// Per-tick event rates of a task phase, in kilo-events per tick.
using EventRates = std::array<double, kNumEventTypes>;

constexpr EventVector ZeroEvents() { return EventVector{}; }

}  // namespace eas

#endif  // SRC_COUNTERS_EVENT_TYPES_H_
