// Counter-based energy estimator (paper Section 3.2, Equation 1).
//
// The estimator is the component the kernel integration reads on every task
// switch and timeslice end. It owns the calibrated per-event weights a_i and
// computes E = sum(a_i * c_i) over a counter diff, plus the static share of
// the accounting period.

#ifndef SRC_COUNTERS_ENERGY_ESTIMATOR_H_
#define SRC_COUNTERS_ENERGY_ESTIMATOR_H_

#include "src/base/time.h"
#include "src/counters/energy_model.h"
#include "src/counters/event_types.h"

namespace eas {

class EnergyEstimator {
 public:
  // `weights` are the calibrated weights (from Calibration or elsewhere);
  // `static_power_per_logical_watts` is the active base power share the
  // estimator attributes to each logical CPU per tick of execution.
  EnergyEstimator(const EventWeights& weights, double static_power_per_logical_watts);

  // Convenience: an estimator with oracle weights (tests / upper bound).
  static EnergyEstimator Oracle(const EnergyModel& model, std::size_t smt_siblings);

  // Dynamic energy attributed to a counter diff.
  double EstimateDynamicEnergy(const EventVector& counter_diff) const;

  // Dynamic energy under DVFS: `energy_scale` is the current P-state's
  // per-event factor (V^2). The simulated kernel knows the P-state it
  // programmed, so scaling the estimate is fair game (the event counts
  // themselves already shrink with frequency). Exactly the unscaled
  // estimate at P0 (scale 1.0).
  double EstimateDynamicEnergy(const EventVector& counter_diff, double energy_scale) const {
    return EstimateDynamicEnergy(counter_diff) * energy_scale;
  }

  // Total energy attributed to an execution period: dynamic part plus the
  // static share for `active_ticks` ticks of execution.
  double EstimateEnergy(const EventVector& counter_diff, Tick active_ticks) const;

  // Equivalent average power over `active_ticks`. A nonzero counter diff
  // with `active_ticks <= 0` (execution the tick accounting could not
  // resolve) is attributed to the minimum accountable period of one tick; a
  // zero diff yields 0 W.
  double EstimatePower(const EventVector& counter_diff, Tick active_ticks) const;

  const EventWeights& weights() const { return weights_; }
  double static_power_per_logical() const { return static_power_per_logical_watts_; }

 private:
  EventWeights weights_;
  double static_power_per_logical_watts_;
};

}  // namespace eas

#endif  // SRC_COUNTERS_ENERGY_ESTIMATOR_H_
