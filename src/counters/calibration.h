// Counter-weight calibration pipeline (paper Section 3.2).
//
// "The weights a_i are calibrated by measuring the real energy consumption
// with a multimeter for several test applications, counting the events that
// occur during the test runs, and solving the resulting linear equations."
//
// We run a set of calibration workloads (distinct event-rate mixes) against
// the true EnergyModel, measure each run's dynamic energy with the noisy
// PowerMeter, and recover the weights by least squares. The recovered weights
// feed the EnergyEstimator used by the scheduler; the residual calibration
// error is what bounds the paper's "<10% estimation error".

#ifndef SRC_COUNTERS_CALIBRATION_H_
#define SRC_COUNTERS_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "src/counters/energy_model.h"
#include "src/counters/event_types.h"
#include "src/counters/power_meter.h"

namespace eas {

struct CalibrationRun {
  EventVector events{};          // counted events of the run
  double measured_energy = 0.0;  // multimeter reading (dynamic part)
};

struct CalibrationResult {
  EventWeights weights{};
  double max_relative_weight_error = 0.0;  // vs. ground truth (diagnostics)
  std::size_t runs_used = 0;
};

class Calibrator {
 public:
  explicit Calibrator(const EnergyModel& truth);

  // Executes one calibration run of `ticks` ticks emitting `rates` per tick
  // (with per-tick multiplicative jitter) and records the meter reading.
  void RunWorkload(const EventRates& rates, int ticks, PowerMeter& meter, Rng& rng);

  // Adds an externally produced run.
  void AddRun(const CalibrationRun& run);

  // Solves for the weights. Requires at least kNumEventTypes runs with
  // linearly independent event mixes. Returns false on a singular system.
  bool Solve(CalibrationResult& result) const;

  // Convenience: builds a standard battery of well-conditioned calibration
  // mixes (one dominant event class per run plus mixed runs), runs them, and
  // solves. This is the one-call path used by the simulator setup.
  static CalibrationResult CalibrateDefault(const EnergyModel& truth, std::uint64_t seed,
                                            double meter_error_stddev);

  const std::vector<CalibrationRun>& runs() const { return runs_; }

 private:
  const EnergyModel& truth_;
  std::vector<CalibrationRun> runs_;
};

}  // namespace eas

#endif  // SRC_COUNTERS_CALIBRATION_H_
