// Ground-truth silicon energy model.
//
// The simulator charges a fixed amount of energy per event occurrence, plus
// static power: an active physical CPU burns a base power regardless of the
// instruction mix, and a halted physical CPU (idle loop or thermal throttling
// executing hlt) burns the measured 13.6 W of the paper's Xeons. This class
// is the "real hardware": the estimator never reads its weights directly;
// it uses weights recovered by calibration against a noisy power meter.

#ifndef SRC_COUNTERS_ENERGY_MODEL_H_
#define SRC_COUNTERS_ENERGY_MODEL_H_

#include "src/base/time.h"
#include "src/counters/event_types.h"

namespace eas {

// Per-event energies in joules per kilo-event.
using EventWeights = std::array<double, kNumEventTypes>;

class EnergyModel {
 public:
  // Default weights; chosen so realistic event rates span the paper's
  // 38 W - 61 W program range (Table 2).
  static EnergyModel Default();

  EnergyModel(const EventWeights& weights, double active_base_power_watts,
              double halt_power_watts);

  // Dynamic energy (J) for a batch of events.
  double DynamicEnergy(const EventVector& events) const;

  // Dynamic energy under DVFS: `energy_scale` is the P-state's per-event
  // factor (V^2 - the frequency factor is already in the event count, which
  // follows execution speed). P0's scale is exactly 1.0, so the result is
  // bit-identical to the unscaled overload at full speed.
  double DynamicEnergy(const EventVector& events, double energy_scale) const {
    return DynamicEnergy(events) * energy_scale;
  }

  // Dynamic power (W) of a task phase emitting `rates` kilo-events per tick.
  double NominalDynamicPower(const EventRates& rates) const;

  // Total steady power (W) of a physical CPU running one task with `rates`
  // and no co-runner, as a multimeter would see it.
  double NominalTotalPower(const EventRates& rates) const;

  // Scales a relative event signature so the resulting rates, run alone on a
  // physical CPU, dissipate `target_power_watts` total. This is how workload
  // models hit Table 2's wattages exactly.
  EventRates RatesForTargetPower(const EventRates& signature, double target_power_watts) const;

  const EventWeights& weights() const { return weights_; }
  double active_base_power() const { return active_base_power_watts_; }
  double halt_power() const { return halt_power_watts_; }

 private:
  EventWeights weights_;
  double active_base_power_watts_;
  double halt_power_watts_;
};

}  // namespace eas

#endif  // SRC_COUNTERS_ENERGY_MODEL_H_
