#include "src/counters/calibration.h"

#include <cassert>
#include <cmath>

#include "src/base/linear_solver.h"

namespace eas {

Calibrator::Calibrator(const EnergyModel& truth) : truth_(truth) {}

void Calibrator::RunWorkload(const EventRates& rates, int ticks, PowerMeter& meter, Rng& rng) {
  CalibrationRun run;
  double true_energy = 0.0;
  for (int t = 0; t < ticks; ++t) {
    EventVector tick_events{};
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      // Per-tick jitter models the natural variation of real code.
      const double jitter = 1.0 + rng.Gaussian(0.0, 0.03);
      tick_events[i] = rates[i] * std::max(0.0, jitter);
      run.events[i] += tick_events[i];
    }
    true_energy += truth_.DynamicEnergy(tick_events);
  }
  run.measured_energy = meter.MeasureEnergy(true_energy);
  runs_.push_back(run);
}

void Calibrator::AddRun(const CalibrationRun& run) { runs_.push_back(run); }

bool Calibrator::Solve(CalibrationResult& result) const {
  if (runs_.size() < kNumEventTypes) {
    return false;
  }
  Matrix a(runs_.size(), kNumEventTypes);
  std::vector<double> b(runs_.size(), 0.0);
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    for (std::size_t c = 0; c < kNumEventTypes; ++c) {
      a.at(r, c) = runs_[r].events[c];
    }
    b[r] = runs_[r].measured_energy;
  }
  auto solution = LeastSquares(a, b);
  if (!solution.has_value()) {
    return false;
  }
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    result.weights[i] = (*solution)[i];
  }
  result.runs_used = runs_.size();
  result.max_relative_weight_error = 0.0;
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const double truth = truth_.weights()[i];
    if (truth > 0.0) {
      const double err = std::fabs(result.weights[i] - truth) / truth;
      result.max_relative_weight_error = std::max(result.max_relative_weight_error, err);
    }
  }
  return true;
}

CalibrationResult Calibrator::CalibrateDefault(const EnergyModel& truth, std::uint64_t seed,
                                               double meter_error_stddev) {
  Calibrator calibrator(truth);
  PowerMeter meter(seed ^ 0x5eedu, meter_error_stddev);
  Rng rng(seed);

  // One run per dominant event class keeps the system well conditioned...
  for (std::size_t dominant = 0; dominant < kNumEventTypes; ++dominant) {
    EventRates rates{};
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      rates[i] = (i == dominant) ? 1500.0 : 60.0;
    }
    calibrator.RunWorkload(rates, /*ticks=*/2000, meter, rng);
  }
  // ...and mixed runs average out the meter noise.
  for (int mix = 0; mix < 10; ++mix) {
    EventRates rates{};
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      rates[i] = rng.Uniform(50.0, 1200.0);
    }
    calibrator.RunWorkload(rates, /*ticks=*/2000, meter, rng);
  }

  CalibrationResult result;
  const bool ok = calibrator.Solve(result);
  assert(ok);
  (void)ok;
  return result;
}

}  // namespace eas
