// Simulated multimeter on the processor power rail.
//
// The paper calibrates counter weights by measuring real energy consumption
// with a multimeter. We reproduce that: the meter reports the true dissipated
// energy of a measurement window with a small multiplicative gaussian error,
// which is what makes the downstream estimation error realistic (<10%).

#ifndef SRC_COUNTERS_POWER_METER_H_
#define SRC_COUNTERS_POWER_METER_H_

#include "src/base/rng.h"

namespace eas {

class PowerMeter {
 public:
  // `relative_error_stddev` ~ 0.02 models a 2% instrument error.
  PowerMeter(std::uint64_t seed, double relative_error_stddev);

  // Returns a noisy measurement of `true_energy_joules`.
  double MeasureEnergy(double true_energy_joules);

  double relative_error_stddev() const { return relative_error_stddev_; }

 private:
  Rng rng_;
  double relative_error_stddev_;
};

}  // namespace eas

#endif  // SRC_COUNTERS_POWER_METER_H_
