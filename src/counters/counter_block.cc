#include "src/counters/counter_block.h"

namespace eas {

void CounterBlock::Accumulate(const EventVector& events) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    values_[i] += events[i];
  }
}

EventVector CounterBlock::DiffSince(const EventVector& since) const {
  EventVector diff{};
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    diff[i] = values_[i] - since[i];
  }
  return diff;
}

void CounterBlock::Reset() { values_ = EventVector{}; }

}  // namespace eas
