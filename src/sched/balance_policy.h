// Uniform interface over the balancing algorithms.
//
// Every balancing policy - the stock load balancer, the paper's merged
// energy/load balancer, and the single-metric strawmen - is a periodic
// per-CPU pass over a BalanceEnv. The simulation engine holds one
// BalancePolicy chosen by name through the BalancePolicyRegistry (src/core),
// so new policies plug in without touching the engine.

#ifndef SRC_SCHED_BALANCE_POLICY_H_
#define SRC_SCHED_BALANCE_POLICY_H_

#include <string>

#include "src/sched/balance_env.h"

namespace eas {

class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  // One balancing pass for `cpu`. Returns the number of tasks migrated.
  virtual int Balance(int cpu, BalanceEnv& env) = 0;

  // The registry name this policy was created under.
  virtual const std::string& name() const = 0;
};

}  // namespace eas

#endif  // SRC_SCHED_BALANCE_POLICY_H_
