// Uniform interface over the balancing algorithms.
//
// Every balancing policy - the stock load balancer, the paper's merged
// energy/load balancer, and the single-metric strawmen - is a periodic
// per-CPU pass over a BalanceEnv. The simulation engine holds one
// BalancePolicy chosen by name through the BalancePolicyRegistry (src/core),
// so new policies plug in without touching the engine.

#ifndef SRC_SCHED_BALANCE_POLICY_H_
#define SRC_SCHED_BALANCE_POLICY_H_

#include <string>

#include "src/sched/balance_env.h"

namespace eas {

class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  // One balancing pass for `cpu`. Returns the number of tasks migrated.
  virtual int Balance(int cpu, BalanceEnv& env) = 0;

  // The registry name this policy was created under.
  virtual const std::string& name() const = 0;

  // True when one Balance() pass over a machine whose runqueues are *all*
  // empty is guaranteed to be a no-op: no env or policy state mutated, no
  // RNG drawn, nothing observable. The engine's quiescent-span skip-ahead
  // relies on this to elide idle-interval balance passes; a policy must opt
  // in explicitly (the builtins do, with the proof at their opt-in site).
  // The conservative default keeps an unknown policy on the naive
  // tick-by-tick path, so skip-ahead can never change its behaviour.
  virtual bool IdleMachineIsNoop() const { return false; }
};

}  // namespace eas

#endif  // SRC_SCHED_BALANCE_POLICY_H_
