#include "src/sched/load_balancer.h"

namespace eas {

LoadBalancer::LoadBalancer() : LoadBalancer(Options{}) {}

LoadBalancer::LoadBalancer(const Options& options) : options_(options) {}

double LoadBalancer::GroupLoad(const CpuGroup& group, const BalanceEnv& env) {
  if (group.cpus.empty()) {
    return 0.0;
  }
  std::size_t total = 0;
  for (int cpu : group.cpus) {
    total += env.runqueue(cpu).nr_running();
  }
  return static_cast<double>(total) / static_cast<double>(group.cpus.size());
}

Task* LoadBalancer::PickTask(const Runqueue& queue, PullPreference preference) {
  switch (preference) {
    case PullPreference::kAny:
      return queue.queued().empty() ? nullptr : queue.queued().front();
    case PullPreference::kHot:
      return queue.HottestQueued();
    case PullPreference::kCool:
      return queue.CoolestQueued();
  }
  return nullptr;
}

Runqueue* LoadBalancer::BusiestQueueIn(const CpuGroup& group, BalanceEnv& env) {
  const CpuGroup* scope = &group;
  if (env.domains().num_levels() > 3) {
    // Deep hierarchy: descend the child-domain links by cached group load
    // instead of scanning every runqueue under a coarse group - the pull
    // stays O(fanout x depth) at rack scale. Classic 3-level machines keep
    // the historical flat scan (and its exact tie-breaking).
    BalanceAggregateCache& cache = env.aggregate_cache();
    while (scope->child_domain >= 0) {
      const SchedDomain& child =
          env.domains().domains()[static_cast<std::size_t>(scope->child_domain)];
      const CpuGroup* busiest_sub = nullptr;
      double busiest_load = 0.0;
      for (const CpuGroup& sub : child.groups) {
        const double load = cache.Load(sub, env);
        if (busiest_sub == nullptr || load > busiest_load) {
          busiest_sub = &sub;
          busiest_load = load;
        }
      }
      if (busiest_sub == nullptr) {
        break;
      }
      scope = busiest_sub;
    }
  }
  Runqueue* busiest = nullptr;
  for (int remote_cpu : scope->cpus) {
    Runqueue& rq = env.runqueue(remote_cpu);
    if (busiest == nullptr || rq.nr_running() > busiest->nr_running()) {
      busiest = &rq;
    }
  }
  return busiest;
}

int LoadBalancer::PullFromBusiest(int cpu, const CpuGroup& group, PullPreference preference,
                                  std::size_t min_imbalance, BalanceEnv& env) {
  int pulled = 0;
  while (true) {
    Runqueue& local = env.runqueue(cpu);
    Runqueue* busiest = BusiestQueueIn(group, env);
    if (busiest == nullptr || busiest->nr_running() < local.nr_running() + min_imbalance) {
      break;
    }
    Task* task = PickTask(*busiest, preference);
    if (task == nullptr) {
      break;  // only the running task is left; cannot pull it
    }
    if (!env.MigrateTask(task, busiest->cpu(), cpu)) {
      break;
    }
    env.aggregate_cache().InvalidateCpus(env, busiest->cpu(), cpu);
    ++pulled;
  }
  return pulled;
}

int LoadBalancer::Balance(int cpu, BalanceEnv& env) const {
  BalanceAggregateCache& cache = env.aggregate_cache();
  cache.BeginPass(env);
  int pulled = 0;
  for (const DomainCursor& cursor : env.domains().StackFor(cpu)) {
    const SchedDomain* domain = cursor.domain;
    const CpuGroup* local_group = cursor.group;
    if (local_group == nullptr) {
      continue;
    }

    // Find the busiest group in the domain.
    const CpuGroup* busiest_group = nullptr;
    double busiest_load = 0.0;
    for (const auto& group : domain->groups) {
      const double load = cache.Load(group, env);
      if (busiest_group == nullptr || load > busiest_load) {
        busiest_group = &group;
        busiest_load = load;
      }
    }
    if (busiest_group == nullptr || busiest_group == local_group) {
      continue;  // nothing to pull at this level; ascend
    }

    // Pull from the longest queue in the busiest group while the imbalance
    // against the local runqueue persists.
    pulled += PullFromBusiest(cpu, *busiest_group, PullPreference::kAny,
                              options_.min_imbalance, env);

    if (pulled > 0) {
      // Imbalance resolved in the lowest domain possible; higher levels run
      // on later invocations if an imbalance remains.
      break;
    }
  }
  return pulled;
}

}  // namespace eas
