#include "src/sched/load_balancer.h"

namespace eas {

LoadBalancer::LoadBalancer() : LoadBalancer(Options{}) {}

LoadBalancer::LoadBalancer(const Options& options) : options_(options) {}

double LoadBalancer::GroupLoad(const CpuGroup& group, const BalanceEnv& env) {
  if (group.cpus.empty()) {
    return 0.0;
  }
  std::size_t total = 0;
  for (int cpu : group.cpus) {
    total += env.runqueue(cpu).nr_running();
  }
  return static_cast<double>(total) / static_cast<double>(group.cpus.size());
}

Task* LoadBalancer::PickTask(const Runqueue& queue, PullPreference preference) {
  switch (preference) {
    case PullPreference::kAny:
      return queue.queued().empty() ? nullptr : queue.queued().front();
    case PullPreference::kHot:
      return queue.HottestQueued();
    case PullPreference::kCool:
      return queue.CoolestQueued();
  }
  return nullptr;
}

int LoadBalancer::PullFromBusiest(int cpu, const CpuGroup& group, PullPreference preference,
                                  std::size_t min_imbalance, BalanceEnv& env) {
  int pulled = 0;
  while (true) {
    Runqueue& local = env.runqueue(cpu);
    Runqueue* busiest = nullptr;
    for (int remote_cpu : group.cpus) {
      Runqueue& rq = env.runqueue(remote_cpu);
      if (busiest == nullptr || rq.nr_running() > busiest->nr_running()) {
        busiest = &rq;
      }
    }
    if (busiest == nullptr || busiest->nr_running() < local.nr_running() + min_imbalance) {
      break;
    }
    Task* task = PickTask(*busiest, preference);
    if (task == nullptr) {
      break;  // only the running task is left; cannot pull it
    }
    if (!env.MigrateTask(task, busiest->cpu(), cpu)) {
      break;
    }
    env.aggregate_cache().Invalidate();
    ++pulled;
  }
  return pulled;
}

int LoadBalancer::Balance(int cpu, BalanceEnv& env) const {
  BalanceAggregateCache& cache = env.aggregate_cache();
  cache.BeginPass();
  int pulled = 0;
  for (const SchedDomain* domain : env.domains().DomainsFor(cpu)) {
    const CpuGroup* local_group = domain->GroupOf(cpu);
    if (local_group == nullptr) {
      continue;
    }

    // Find the busiest group in the domain.
    const CpuGroup* busiest_group = nullptr;
    double busiest_load = 0.0;
    for (const auto& group : domain->groups) {
      const double load = cache.Load(group, env);
      if (busiest_group == nullptr || load > busiest_load) {
        busiest_group = &group;
        busiest_load = load;
      }
    }
    if (busiest_group == nullptr || busiest_group == local_group) {
      continue;  // nothing to pull at this level; ascend
    }

    // Pull from the longest queue in the busiest group while the imbalance
    // against the local runqueue persists.
    pulled += PullFromBusiest(cpu, *busiest_group, PullPreference::kAny,
                              options_.min_imbalance, env);

    if (pulled > 0) {
      // Imbalance resolved in the lowest domain possible; higher levels run
      // on later invocations if an imbalance remains.
      break;
    }
  }
  return pulled;
}

}  // namespace eas
