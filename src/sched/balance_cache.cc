#include "src/sched/balance_cache.h"

#include "src/sched/balance_env.h"
#include "src/sched/load_balancer.h"

namespace eas {

double BalanceAggregateCache::RunqueuePowerRatio(const CpuGroup& group, const BalanceEnv& env) {
  Entry& entry = entries_[&group];
  if (entry.rq_epoch != epoch_) {
    entry.rq_ratio =
        LoadBalancer::GroupAverage(group, [&env](int c) { return env.RunqueuePowerRatio(c); });
    entry.rq_epoch = epoch_;
  }
  return entry.rq_ratio;
}

double BalanceAggregateCache::ThermalPowerRatio(const CpuGroup& group, const BalanceEnv& env) {
  Entry& entry = entries_[&group];
  if (entry.thermal_epoch != epoch_) {
    entry.thermal_ratio =
        LoadBalancer::GroupAverage(group, [&env](int c) { return env.ThermalPowerRatio(c); });
    entry.thermal_epoch = epoch_;
  }
  return entry.thermal_ratio;
}

double BalanceAggregateCache::Load(const CpuGroup& group, const BalanceEnv& env) {
  Entry& entry = entries_[&group];
  if (entry.load_epoch != epoch_) {
    entry.load = LoadBalancer::GroupLoad(group, env);
    entry.load_epoch = epoch_;
  }
  return entry.load;
}

}  // namespace eas
