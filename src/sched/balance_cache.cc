#include "src/sched/balance_cache.h"

#include "src/sched/balance_env.h"
#include "src/sched/load_balancer.h"

namespace eas {

void BalanceAggregateCache::BeginPass(const BalanceEnv& env) {
  const std::uint64_t version = env.metrics_version();
  if (!has_version_ || version != last_version_) {
    ++epoch_;
    last_version_ = version;
    has_version_ = true;
  }
  deep_rollups_ = env.domains().num_levels() > 3;
}

void BalanceAggregateCache::InvalidateCpus(const BalanceEnv& env, int from, int to) {
  for (int cpu : {from, to}) {
    for (const DomainCursor& cursor : env.domains().StackFor(cpu)) {
      if (Entry* entry = EntryFor(*cursor.group)) {
        entry->rq_epoch = 0;
        entry->thermal_epoch = 0;
        entry->load_epoch = 0;
      }
    }
  }
}

BalanceAggregateCache::Entry* BalanceAggregateCache::EntryFor(const CpuGroup& group) {
  if (group.index < 0) {
    return nullptr;
  }
  const std::size_t index = static_cast<std::size_t>(group.index);
  if (index >= entries_.size()) {
    // Fresh Entry slots carry epoch 0, which never matches epoch_ (it
    // starts at 1 and only grows), so grown slots read as stale.
    entries_.resize(index + 1);
  }
  return &entries_[index];
}

double BalanceAggregateCache::RqSum(const CpuGroup& group, const BalanceEnv& env) {
  if (const Entry* entry = EntryFor(group); entry != nullptr && entry->rq_epoch == epoch_) {
    return entry->rq_sum;
  }
  double sum = 0.0;
  if (deep_rollups_ && group.child_domain >= 0) {
    const SchedDomain& child = env.domains().domains()[static_cast<std::size_t>(group.child_domain)];
    for (const CpuGroup& sub : child.groups) {
      sum += RqSum(sub, env);  // may grow entries_; no references held
    }
  } else {
    for (int cpu : group.cpus) {
      sum += env.RunqueuePowerRatio(cpu);
    }
  }
  if (Entry* entry = EntryFor(group)) {
    entry->rq_sum = sum;
    entry->rq_epoch = epoch_;
  }
  return sum;
}

double BalanceAggregateCache::ThermalSum(const CpuGroup& group, const BalanceEnv& env) {
  if (const Entry* entry = EntryFor(group); entry != nullptr && entry->thermal_epoch == epoch_) {
    return entry->thermal_sum;
  }
  double sum = 0.0;
  if (deep_rollups_ && group.child_domain >= 0) {
    const SchedDomain& child = env.domains().domains()[static_cast<std::size_t>(group.child_domain)];
    for (const CpuGroup& sub : child.groups) {
      sum += ThermalSum(sub, env);
    }
  } else {
    for (int cpu : group.cpus) {
      sum += env.ThermalPowerRatio(cpu);
    }
  }
  if (Entry* entry = EntryFor(group)) {
    entry->thermal_sum = sum;
    entry->thermal_epoch = epoch_;
  }
  return sum;
}

std::size_t BalanceAggregateCache::LoadTotal(const CpuGroup& group, const BalanceEnv& env) {
  if (const Entry* entry = EntryFor(group); entry != nullptr && entry->load_epoch == epoch_) {
    return entry->load_total;
  }
  std::size_t total = 0;
  // Integer addition is associative, so the rollup is exact at any depth and
  // needs no deep-hierarchy gate - only an existing child link.
  if (group.child_domain >= 0) {
    const SchedDomain& child = env.domains().domains()[static_cast<std::size_t>(group.child_domain)];
    for (const CpuGroup& sub : child.groups) {
      total += LoadTotal(sub, env);
    }
  } else {
    for (int cpu : group.cpus) {
      total += env.runqueue(cpu).nr_running();
    }
  }
  if (Entry* entry = EntryFor(group)) {
    entry->load_total = total;
    entry->load_epoch = epoch_;
  }
  return total;
}

double BalanceAggregateCache::RunqueuePowerRatio(const CpuGroup& group, const BalanceEnv& env) {
  if (group.cpus.empty()) {
    return 0.0;
  }
  return RqSum(group, env) / static_cast<double>(group.cpus.size());
}

double BalanceAggregateCache::ThermalPowerRatio(const CpuGroup& group, const BalanceEnv& env) {
  if (group.cpus.empty()) {
    return 0.0;
  }
  return ThermalSum(group, env) / static_cast<double>(group.cpus.size());
}

double BalanceAggregateCache::Load(const CpuGroup& group, const BalanceEnv& env) {
  if (group.cpus.empty()) {
    return 0.0;
  }
  return static_cast<double>(LoadTotal(group, env)) / static_cast<double>(group.cpus.size());
}

}  // namespace eas
