// Per-balance-pass cache of CPU-group aggregates, with per-domain rollups.
//
// One balancing pass (a single BalancePolicy::Balance call) walks the domain
// hierarchy bottom-up and repeatedly asks for the same group-level averages:
// runqueue power ratio, thermal power ratio and load (nr_running). Those
// aggregates only change when task execution advances the clock or a
// migration moves a task, so the balancers compute them once through this
// cache instead of rescanning every group's CPUs at every domain level.
//
// Protocol: a balancer calls BeginPass(env) on entry to Balance(). That is a
// no-op while env.metrics_version() is unchanged (several CPUs balancing
// within one tick share the aggregates) and drops everything once the
// version moves (task execution mutated the metrics). After a migration the
// balancer calls InvalidateCpus(env, from, to) - only the group entries on
// the two CPUs' domain paths can have changed, everything else stays warm -
// or the sledgehammer Invalidate() when the touched CPUs are unknown.
//
// Values are computed lazily per group and per metric. On classic <= 3-level
// hierarchies the summation is exactly the flat scan it replaces, so a
// cached pass is bit-identical to an uncached one. On deeper hierarchies the
// double-valued metrics roll up the child-domain links instead (a group's
// sum is the sum of its child domain's group sums), making a cold group
// O(fanout) on warm children instead of O(all CPUs below it); integer load
// totals roll up at every depth since integer addition is associative.

#ifndef SRC_SCHED_BALANCE_CACHE_H_
#define SRC_SCHED_BALANCE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/topo/sched_domain.h"

namespace eas {

class BalanceEnv;

class BalanceAggregateCache {
 public:
  // Starts a pass: drops every cached value iff env.metrics_version() moved
  // since the previous pass, and latches whether the hierarchy is deep
  // enough for double-metric rollups.
  void BeginPass(const BalanceEnv& env);

  // Unconditional pass start: every cached value is stale from here on.
  void BeginPass() { ++epoch_; has_version_ = false; }

  // Drops all cached values (call after a mutation whose footprint is
  // unknown).
  void Invalidate() { ++epoch_; has_version_ = false; }

  // Drops the group entries on `from`'s and `to`'s domain paths (their
  // epochs reset, so the slots read as stale) - the only aggregates a
  // migration between the two can change. Metrics of every other CPU are
  // untouched by a migration, so the surviving entries still equal a fresh
  // recompute bit for bit.
  void InvalidateCpus(const BalanceEnv& env, int from, int to);

  // Average RunqueuePowerRatio over `group`'s CPUs (0 for an empty group).
  double RunqueuePowerRatio(const CpuGroup& group, const BalanceEnv& env);

  // Average ThermalPowerRatio over `group`'s CPUs (0 for an empty group).
  double ThermalPowerRatio(const CpuGroup& group, const BalanceEnv& env);

  // Average nr_running over `group`'s CPUs (0 for an empty group) - the
  // LoadBalancer::GroupLoad metric.
  double Load(const CpuGroup& group, const BalanceEnv& env);

 private:
  struct Entry {
    double rq_sum = 0.0;
    double thermal_sum = 0.0;
    std::size_t load_total = 0;
    std::uint64_t rq_epoch = 0;
    std::uint64_t thermal_epoch = 0;
    std::uint64_t load_epoch = 0;
  };

  double RqSum(const CpuGroup& group, const BalanceEnv& env);
  double ThermalSum(const CpuGroup& group, const BalanceEnv& env);
  std::size_t LoadTotal(const CpuGroup& group, const BalanceEnv& env);

  // Cache slot for `group`, or nullptr for a group without a hierarchy
  // index (hand-built in tests) - those compute uncached. Grows the table
  // on demand, so callers must not hold entry references across calls.
  Entry* EntryFor(const CpuGroup& group);

  // Keyed by CpuGroup::index - the dense, run-stable group identity
  // DomainHierarchy::Build assigns. (This table was once keyed by the
  // group's address; easlint's determinism-pointer-key rule exists because
  // one ordered walk over such a map would have tied results to malloc
  // addresses.)
  std::vector<Entry> entries_;
  std::uint64_t epoch_ = 1;
  std::uint64_t last_version_ = 0;
  bool has_version_ = false;
  // Double-metric rollups change summation order, so they only switch on
  // for hierarchies deeper than the classic 3 levels (whose outputs are
  // pinned by the golden tests and scenario captures).
  bool deep_rollups_ = false;
};

}  // namespace eas

#endif  // SRC_SCHED_BALANCE_CACHE_H_
