// Per-balance-pass cache of CPU-group aggregates.
//
// One balancing pass (a single BalancePolicy::Balance call) walks the domain
// hierarchy bottom-up and repeatedly asks for the same group-level averages:
// runqueue power ratio, thermal power ratio and load (nr_running). Those
// aggregates only change when the pass itself migrates a task, so the
// balancers compute them once per pass through this cache instead of
// rescanning every group's CPUs at every domain level.
//
// Protocol: a balancer calls BeginPass() on entry to Balance() (nothing
// outside the pass is trusted to keep the cache fresh - task execution and
// other policies mutate the metrics between passes) and Invalidate() after
// every migration it performs. Values are computed lazily per group and per
// metric, with exactly the summation order of the scans they replace, so a
// cached pass is bit-identical to an uncached one.

#ifndef SRC_SCHED_BALANCE_CACHE_H_
#define SRC_SCHED_BALANCE_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "src/topo/sched_domain.h"

namespace eas {

class BalanceEnv;

class BalanceAggregateCache {
 public:
  // Starts a fresh pass: every cached value is stale from here on.
  void BeginPass() { ++epoch_; }

  // Drops all cached values (call after a migration mutated the runqueues).
  void Invalidate() { ++epoch_; }

  // Average RunqueuePowerRatio over `group`'s CPUs (0 for an empty group).
  double RunqueuePowerRatio(const CpuGroup& group, const BalanceEnv& env);

  // Average ThermalPowerRatio over `group`'s CPUs (0 for an empty group).
  double ThermalPowerRatio(const CpuGroup& group, const BalanceEnv& env);

  // Average nr_running over `group`'s CPUs (0 for an empty group) - the
  // LoadBalancer::GroupLoad metric.
  double Load(const CpuGroup& group, const BalanceEnv& env);

 private:
  struct Entry {
    double rq_ratio = 0.0;
    double thermal_ratio = 0.0;
    double load = 0.0;
    std::uint64_t rq_epoch = 0;
    std::uint64_t thermal_epoch = 0;
    std::uint64_t load_epoch = 0;
  };

  // Groups live in the env's DomainHierarchy, which outlives any pass, so
  // the group address is a stable key.
  std::unordered_map<const CpuGroup*, Entry> entries_;
  std::uint64_t epoch_ = 1;
};

}  // namespace eas

#endif  // SRC_SCHED_BALANCE_CACHE_H_
