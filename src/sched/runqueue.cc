#include "src/sched/runqueue.h"

#include <algorithm>

namespace eas {

void Runqueue::Enqueue(Task* task) {
  task->set_cpu(cpu_);
  task->set_state(TaskState::kRunnable);
  queued_.push_back(task);
}

void Runqueue::EnqueueFront(Task* task) {
  task->set_cpu(cpu_);
  task->set_state(TaskState::kRunnable);
  queued_.push_front(task);
}

bool Runqueue::Remove(Task* task) {
  auto it = std::find(queued_.begin(), queued_.end(), task);
  if (it == queued_.end()) {
    return false;
  }
  queued_.erase(it);
  return true;
}

Task* Runqueue::PickNext() {
  if (queued_.empty()) {
    current_ = nullptr;
    return nullptr;
  }
  current_ = queued_.front();
  queued_.pop_front();
  current_->set_state(TaskState::kRunning);
  return current_;
}

Task* Runqueue::TakeCurrent() {
  Task* task = current_;
  current_ = nullptr;
  return task;
}

double Runqueue::AveragePower(double idle_power) const {
  double sum = 0.0;
  std::size_t count = 0;
  if (current_ != nullptr) {
    sum += current_->profile().power();
    ++count;
  }
  for (const Task* task : queued_) {
    sum += task->profile().power();
    ++count;
  }
  if (count == 0) {
    return idle_power;
  }
  return sum / static_cast<double>(count);
}

Task* Runqueue::HottestQueued() const {
  Task* best = nullptr;
  for (Task* task : queued_) {
    if (best == nullptr || task->profile().power() > best->profile().power()) {
      best = task;
    }
  }
  return best;
}

Task* Runqueue::CoolestQueued() const {
  Task* best = nullptr;
  for (Task* task : queued_) {
    if (best == nullptr || task->profile().power() < best->profile().power()) {
      best = task;
    }
  }
  return best;
}

}  // namespace eas
