#include "src/sched/runqueue.h"

#include <algorithm>

namespace eas {

void Runqueue::AddQueuedPower(Task* task) {
  task->set_enqueued_power(task->profile().power());
  queued_power_sum_ += task->enqueued_power();
}

void Runqueue::SubtractQueuedPower(const Task* task) {
  queued_power_sum_ -= task->enqueued_power();
  if (queued_.empty()) {
    queued_power_sum_ = 0.0;  // re-anchor: no drift survives an empty queue
  }
}

void Runqueue::Enqueue(Task* task) {
  task->set_cpu(cpu_);
  task->set_state(TaskState::kRunnable);
  queued_.push_back(task);
  AddQueuedPower(task);
  Bump(+1);
}

void Runqueue::EnqueueFront(Task* task) {
  task->set_cpu(cpu_);
  task->set_state(TaskState::kRunnable);
  queued_.push_front(task);
  AddQueuedPower(task);
  Bump(+1);
}

bool Runqueue::Remove(Task* task) {
  auto it = std::find(queued_.begin(), queued_.end(), task);
  if (it == queued_.end()) {
    return false;
  }
  queued_.erase(it);
  SubtractQueuedPower(task);
  Bump(-1);
  return true;
}

Task* Runqueue::PickNext() {
  // A replaced current leaves the nr_running accounting; popping the front
  // into current is net zero (one queued becomes one running).
  if (current_ != nullptr) {
    Bump(-1);
  }
  if (queued_.empty()) {
    current_ = nullptr;
    return nullptr;
  }
  current_ = queued_.front();
  queued_.pop_front();
  SubtractQueuedPower(current_);
  current_->set_state(TaskState::kRunning);
  return current_;
}

Task* Runqueue::TakeCurrent() {
  Task* task = current_;
  if (task != nullptr) {
    Bump(-1);
  }
  current_ = nullptr;
  return task;
}

double Runqueue::AveragePower(double idle_power) const {
  const std::size_t count = queued_.size() + (current_ != nullptr ? 1 : 0);
  if (count == 0) {
    return idle_power;
  }
  const double sum =
      queued_power_sum_ + (current_ != nullptr ? current_->profile().power() : 0.0);
  return sum / static_cast<double>(count);
}

Task* Runqueue::HottestQueued() const {
  Task* best = nullptr;
  for (Task* task : queued_) {
    if (best == nullptr || task->profile().power() > best->profile().power()) {
      best = task;
    }
  }
  return best;
}

Task* Runqueue::CoolestQueued() const {
  Task* best = nullptr;
  for (Task* task : queued_) {
    if (best == nullptr || task->profile().power() < best->profile().power()) {
      best = task;
    }
  }
  return best;
}

}  // namespace eas
