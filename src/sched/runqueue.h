// Per logical CPU runqueue.
//
// Mirrors the Linux 2.6 design the paper modifies: every CPU executes tasks
// from its local runqueue only (affinity scheduling, Section 4.1); balancers
// migrate tasks between runqueues. The runqueue also exposes the energy view
// the paper adds: the average energy profile over its tasks is the CPU's
// "runqueue power" (Section 4.3).

#ifndef SRC_SCHED_RUNQUEUE_H_
#define SRC_SCHED_RUNQUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/task/task.h"

namespace eas {

class Runqueue {
 public:
  explicit Runqueue(int cpu) : cpu_(cpu) {}

  int cpu() const { return cpu_; }

  // Points this queue at a machine-wide nr_running counter (owned by the
  // SimulationState that owns the queue). Every mutation keeps the counter
  // equal to the sum of nr_running() over the attached queues, which makes
  // "is the whole machine idle" an O(1) read for the skip-ahead planner
  // instead of an O(CPUs) scan per tick. Folds in the queue's current
  // population, so attaching is valid at any point.
  void AttachRunnableCounter(std::int64_t* counter) {
    runnable_counter_ = counter;
    *counter += static_cast<std::int64_t>(nr_running());
  }

  // --- queue manipulation ---------------------------------------------------
  void Enqueue(Task* task);       // to the back (normal rotation)
  void EnqueueFront(Task* task);  // to the front (woken tasks run soon)
  bool Remove(Task* task);        // removes a queued task; false if absent

  // Pops the next queued task and makes it current. Returns nullptr if the
  // queue is empty (CPU goes idle).
  Task* PickNext();

  Task* current() const { return current_; }
  void SetCurrent(Task* task) {
    Bump((task != nullptr ? 1 : 0) - (current_ != nullptr ? 1 : 0));
    current_ = task;
  }

  // Detaches and returns the current task (it keeps running elsewhere or
  // goes to sleep); the CPU will pick a new current.
  Task* TakeCurrent();

  // Queued plus current - Linux's rq->nr_running.
  std::size_t nr_running() const { return queued_.size() + (current_ != nullptr ? 1 : 0); }
  std::size_t nr_queued() const { return queued_.size(); }
  bool Idle() const { return nr_running() == 0; }

  const std::deque<Task*>& queued() const { return queued_; }

  // --- energy view -----------------------------------------------------------

  // Average energy profile power over current + queued tasks; `idle_power`
  // for an empty queue. This is the paper's runqueue power.
  //
  // O(1): the sum over the queued tasks is maintained incrementally on
  // enqueue/remove/pick (a queued task's profile only changes while it is
  // current, never while it waits), so the balancers' many reads per pass do
  // not rescan the queue. The current task's profile *does* change as it
  // runs and is read live.
  double AveragePower(double idle_power) const;

  // Hottest / coolest *queued* task (the running task can only be moved by
  // hot task migration). nullptr if no tasks are queued.
  Task* HottestQueued() const;
  Task* CoolestQueued() const;

 private:
  // Bookkeeping for the incremental queued-power sum. Removal subtracts the
  // exact contribution recorded at enqueue time; an emptied queue re-anchors
  // the sum at zero so floating-point drift cannot accumulate.
  void AddQueuedPower(Task* task);
  void SubtractQueuedPower(const Task* task);

  void Bump(int delta) {
    if (runnable_counter_ != nullptr) {
      *runnable_counter_ += delta;
    }
  }

  int cpu_;
  std::deque<Task*> queued_;
  Task* current_ = nullptr;
  double queued_power_sum_ = 0.0;
  std::int64_t* runnable_counter_ = nullptr;
};

}  // namespace eas

#endif  // SRC_SCHED_RUNQUEUE_H_
