// Environment interface the balancing policies operate against.
//
// Both the baseline load balancer (this module) and the paper's merged
// energy/load balancer plus hot task migration (src/core) are policies over
// the same machine state: runqueues, the domain hierarchy, and per-CPU power
// metrics. The Machine (src/sim) implements this interface; unit tests
// implement it with hand-built fixtures.

#ifndef SRC_SCHED_BALANCE_ENV_H_
#define SRC_SCHED_BALANCE_ENV_H_

#include <cstdint>

#include "src/sched/balance_cache.h"
#include "src/sched/runqueue.h"
#include "src/task/task.h"
#include "src/topo/cpu_topology.h"
#include "src/topo/sched_domain.h"

namespace eas {

class BalanceEnv {
 public:
  virtual ~BalanceEnv() = default;

  // Per-balance-pass cache of group aggregates. Policies call BeginPass(env)
  // on entry to Balance() and InvalidateCpus()/Invalidate() after each
  // migration they perform; see src/sched/balance_cache.h for the protocol.
  BalanceAggregateCache& aggregate_cache() const { return aggregate_cache_; }

  // Version stamp of the balance metrics (runqueue contents, profiles,
  // thermal averages). While it holds still, group aggregates cached in one
  // pass stay valid for the next - migrations are reported separately via
  // the cache invalidation calls. The simulation advances it once per tick;
  // the default implementation never repeats a value, so hand-built test
  // envs (which mutate metrics at will between passes) keep the historical
  // invalidate-on-every-pass behaviour.
  virtual std::uint64_t metrics_version() const { return ++fallback_version_; }

  virtual const CpuTopology& topology() const = 0;
  virtual const DomainHierarchy& domains() const = 0;

  virtual Runqueue& runqueue(int cpu) = 0;
  virtual const Runqueue& runqueue(int cpu) const = 0;

  // --- energy metrics (Section 4.3) ---------------------------------------

  // Average energy profile of the CPU's tasks (W). Reflects migrations
  // immediately.
  virtual double RunqueuePower(int cpu) const = 0;

  // Exponential average of the CPU's past energy consumption, calibrated to
  // the thermal time constant (W). Follows temperature.
  virtual double ThermalPower(int cpu) const = 0;

  // Maximum sustainable power of the logical CPU (W).
  virtual double MaxPower(int cpu) const = 0;

  double RunqueuePowerRatio(int cpu) const { return RunqueuePower(cpu) / MaxPower(cpu); }
  double ThermalPowerRatio(int cpu) const { return ThermalPower(cpu) / MaxPower(cpu); }

  // --- mutation -------------------------------------------------------------

  // Migrates a task from `from`'s runqueue to `to`'s. Handles both queued
  // tasks and `from`'s current task (hot task migration); commits the task's
  // accounting period and applies the cache-warmup penalty. Returns false if
  // the task was not found on `from`.
  virtual bool MigrateTask(Task* task, int from, int to) = 0;

  // Whether the logical CPU accepts work. Policies and placement skip
  // offline CPUs as candidates; fault-free environments (and every test
  // fixture) stay all-online via this default.
  virtual bool CpuOnline(int /*cpu*/) const { return true; }

  // Total migrations performed so far (for the paper's migration counts).
  virtual std::int64_t migration_count() const = 0;

 private:
  mutable BalanceAggregateCache aggregate_cache_;
  mutable std::uint64_t fallback_version_ = 0;
};

}  // namespace eas

#endif  // SRC_SCHED_BALANCE_ENV_H_
