// Baseline hierarchical load balancer (Linux 2.6 style).
//
// Runs on every CPU and only *pulls*: imbalances that would require pushing
// are resolved when the balancer runs on the remote CPU (Section 4.4). For
// each domain level bottom-up, find the group with the highest average
// runqueue length; if it is not the local group and the imbalance is big
// enough, pull tasks from the longest queue in that group. Resolving at the
// lowest possible level keeps migrations cheap (cache/node affinity).
//
// This is the paper's *comparison baseline* ("energy balancing disabled"):
// it balances load only. The merged energy+load algorithm lives in
// src/core/energy_balancer.

#ifndef SRC_SCHED_LOAD_BALANCER_H_
#define SRC_SCHED_LOAD_BALANCER_H_

#include <cstddef>

#include "src/sched/balance_env.h"

namespace eas {

// Which task to prefer when pulling from a remote queue.
enum class PullPreference {
  kAny,   // baseline: whatever is first in the queue
  kHot,   // highest energy profile (remote group is hotter than us)
  kCool,  // lowest energy profile (remote group is cooler than us)
};

class LoadBalancer {
 public:
  struct Options {
    // Minimum difference in queue lengths before a pull happens. 2 matches
    // Linux's behaviour of tolerating a difference of one task.
    std::size_t min_imbalance = 2;
  };

  LoadBalancer();
  explicit LoadBalancer(const Options& options);

  // Idle-machine no-op guarantee (the engine's skip-ahead capability flag):
  // with every runqueue empty, PullFromBusiest exits at every level because
  // busiest->nr_running() (0) < local.nr_running() (0) + min_imbalance, so a
  // pass reads loads but mutates nothing and draws no RNG.
  static constexpr bool kIdleMachineNoop = true;

  // One balancing pass for `cpu`. Returns the number of tasks pulled.
  int Balance(int cpu, BalanceEnv& env) const;

  // Average nr_running over a CPU group.
  static double GroupLoad(const CpuGroup& group, const BalanceEnv& env);

  // Average of a per-CPU metric over a group (0 for an empty group). The one
  // definition of group-average semantics: the merged energy/load balancer,
  // the naive strawmen and the balance-aggregate cache all go through it.
  template <typename Fn>
  static double GroupAverage(const CpuGroup& group, Fn&& metric) {
    if (group.cpus.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (int cpu : group.cpus) {
      sum += metric(cpu);
    }
    return sum / static_cast<double>(group.cpus.size());
  }

  // Picks a task from `queue` according to `preference`; nullptr if empty.
  static Task* PickTask(const Runqueue& queue, PullPreference preference);

  // Longest runqueue within `group`. On deep (> 3-level) hierarchies this
  // descends the child-domain links by cached group load, O(fanout x depth);
  // classic machines keep the historical flat scan over the group's CPUs.
  static Runqueue* BusiestQueueIn(const CpuGroup& group, BalanceEnv& env);

  // Pulls tasks onto `cpu` from the longest queue in `group` while that
  // queue exceeds the local one by at least `min_imbalance`, picking per
  // `preference`. Shared by the baseline balancer and the merged energy/load
  // balancer's load step so the two pull loops cannot drift. Invalidates
  // `env`'s aggregate cache after each pull. Returns the tasks pulled.
  static int PullFromBusiest(int cpu, const CpuGroup& group, PullPreference preference,
                             std::size_t min_imbalance, BalanceEnv& env);

 private:
  Options options_;
};

}  // namespace eas

#endif  // SRC_SCHED_LOAD_BALANCER_H_
